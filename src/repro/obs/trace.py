"""Causal write-path tracing and the Chrome trace-event exporter.

A :class:`Tracer` attaches to one :class:`~repro.obs.metrics.MetricRegistry`
and turns the span substrate into a causal trace:

- every *root* span gets a fresh **trace id** at creation (children
  inherit their parent's), so one ``db.write`` and everything it spawns
  share an identity;
- every span is stamped with the **track** it executes on — the client
  thread, a background compaction thread (``bg.<db>.t<i>``), the journal,
  the flusher, a device channel — via an explicit track stack that the
  :class:`~repro.lsm.background.LazyExecutor` and the journal push/pop
  around their work;
- **flow edges** link spans across object and track boundaries: a KV
  batch's ``db.write`` span flows into the minor-compaction dump that
  persists it, the dump's SSTable inode flows into the JBD2 commit that
  makes it durable, and the commit flows into the dependency-group
  retirement (``db.retire``) that finally deletes the shadow
  predecessors — the full NobLSM causal chain;
- every device I/O is recorded as a bounded **slice** on its channel's
  track, so queueing is visible per channel.

Everything is virtual-time only: the tracer never advances the clock, so
a traced run's simulated timings are identical to an untraced run.

:func:`chrome_trace_document` renders the whole trace as Chrome
trace-event JSON (the ``traceEvents`` array of ``ph: "X"`` complete
events plus ``M`` thread-name metadata and ``s``/``f`` flow pairs) —
loadable in Perfetto / ``chrome://tracing``. The export is
byte-deterministic for a deterministic run: track ids are assigned by a
fixed ordering, timestamps come from the virtual clock, and the JSON is
dumped with sorted keys.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricRegistry
from repro.obs.spans import Span


class IOSlice:
    """One device operation on a channel track (virtual-time interval)."""

    __slots__ = ("kind", "channel", "start_ns", "end_ns", "nbytes", "stream")

    def __init__(
        self,
        kind: str,
        channel: int,
        start_ns: int,
        end_ns: int,
        nbytes: int,
        stream: object = None,
    ) -> None:
        self.kind = kind
        self.channel = channel
        self.start_ns = int(start_ns)
        self.end_ns = int(end_ns)
        self.nbytes = nbytes
        self.stream = stream

    def __repr__(self) -> str:
        return (
            f"IOSlice({self.kind!r}, ch{self.channel}, "
            f"[{self.start_ns}, {self.end_ns}], {self.nbytes}B)"
        )


class FlowEdge:
    """A causal arrow between two spans (possibly on different tracks)."""

    __slots__ = ("flow_id", "name", "src_ts", "src_track", "dst_ts", "dst_track")

    def __init__(
        self,
        flow_id: int,
        name: str,
        src_ts: int,
        src_track: str,
        dst_ts: int,
        dst_track: str,
    ) -> None:
        self.flow_id = flow_id
        self.name = name
        self.src_ts = src_ts
        self.src_track = src_track
        self.dst_ts = dst_ts
        self.dst_track = dst_track

    def __repr__(self) -> str:
        return (
            f"FlowEdge({self.name!r}, {self.src_track}@{self.src_ts} -> "
            f"{self.dst_track}@{self.dst_ts})"
        )


class Tracer:
    """Causal trace collector bound to one enabled registry.

    Attach *before* building the stack so every component sees it::

        registry = MetricRegistry()
        tracer = Tracer(registry)
        stack = StorageStack(StackConfig(obs=registry))

    The tracer sees every finished span through the registry's listener
    stream (children included) and keeps a bounded copy for export.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        max_spans: int = 500_000,
        max_io: int = 500_000,
        max_flows: int = 100_000,
    ) -> None:
        if not registry.enabled:
            raise ValueError("cannot attach a Tracer to a disabled registry")
        if registry.tracer is not None:
            raise RuntimeError("registry already has a tracer attached")
        self.registry = registry
        self.max_spans = max_spans
        self.max_io = max_io
        self.max_flows = max_flows
        self._next_trace = 1
        self._next_flow = 1
        self._track_stack: List[str] = ["client"]
        self.spans: List[Span] = []
        self.spans_dropped = 0
        self.io_slices: List[IOSlice] = []
        self.io_dropped = 0
        self.flows: List[FlowEdge] = []
        self.flows_dropped = 0
        #: ino -> [producing span, committing span or None]
        self._inode_spans: Dict[int, List[Optional[Span]]] = {}
        registry.tracer = self
        registry.add_span_listener(self._on_finish)

    # ------------------------------------------------------------------
    # track stack (who is executing right now)
    # ------------------------------------------------------------------

    @property
    def current_track(self) -> str:
        return self._track_stack[-1]

    def push_track(self, track: str) -> None:
        self._track_stack.append(track)

    def pop_track(self) -> None:
        if len(self._track_stack) <= 1:
            raise RuntimeError("track stack underflow")
        self._track_stack.pop()

    # ------------------------------------------------------------------
    # span hooks (called by the registry)
    # ------------------------------------------------------------------

    def _on_start(self, span: Span) -> None:
        """Stamp a fresh root span with a trace id and its track."""
        span.trace_id = self._next_trace
        self._next_trace += 1
        span.track = self.current_track

    def _on_finish(self, span: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.spans_dropped += 1

    # ------------------------------------------------------------------
    # device slices
    # ------------------------------------------------------------------

    def io_slice(
        self,
        kind: str,
        channel: int,
        start_ns: int,
        end_ns: int,
        nbytes: int,
        stream: object = None,
    ) -> None:
        if len(self.io_slices) < self.max_io:
            self.io_slices.append(
                IOSlice(kind, channel, start_ns, end_ns, nbytes, stream)
            )
        else:
            self.io_dropped += 1

    # ------------------------------------------------------------------
    # causal links
    # ------------------------------------------------------------------

    def link(self, src: Span, dst: Span, name: str = "dep") -> None:
        """Record a causal arrow from ``src``'s end to ``dst``'s start."""
        if len(self.flows) >= self.max_flows:
            self.flows_dropped += 1
            return
        src_ts = src.end_ns if src.end_ns is not None else src.start_ns
        dst_ts = dst.start_ns
        # A periodic commit may start inside its producer's span; clamp
        # so the arrow never points backwards in time.
        src_ts = min(src_ts, dst_ts)
        self.flows.append(
            FlowEdge(
                self._next_flow, name, src_ts, src.track, dst_ts, dst.track
            )
        )
        self._next_flow += 1

    def bind_inode(self, ino: int, span: Span) -> None:
        """Remember which span produced an inode's content (SSTable write)."""
        self._inode_spans[ino] = [span, None]

    def note_commit(self, inos, commit_span: Span) -> None:
        """A journal commit covered ``inos``: link producers -> commit."""
        for ino in sorted(inos):
            entry = self._inode_spans.get(ino)
            if entry is None:
                continue
            if entry[1] is None:
                producer = entry[0]
                if producer is not None:
                    self.link(producer, commit_span, name="journal-commit")
                entry[1] = commit_span

    def commit_span_of(self, ino: int) -> Optional[Span]:
        """The journal-commit span that made ``ino`` durable, if traced."""
        entry = self._inode_spans.get(ino)
        return entry[1] if entry is not None else None

    def drop_inode(self, ino: int) -> None:
        """The inode is gone (unlink): forget its binding."""
        self._inode_spans.pop(ino, None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Forget everything collected (new experiment, ids keep counting)."""
        self.spans.clear()
        self.spans_dropped = 0
        self.io_slices.clear()
        self.io_dropped = 0
        self.flows.clear()
        self.flows_dropped = 0
        self._inode_spans.clear()

    def snapshot(self) -> Dict[str, object]:
        return {
            "spans": len(self.spans),
            "spans_dropped": self.spans_dropped,
            "io_slices": len(self.io_slices),
            "io_dropped": self.io_dropped,
            "flows": len(self.flows),
            "flows_dropped": self.flows_dropped,
        }


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------

#: coarse ordering of track groups in the Perfetto timeline
_TRACK_RANKS = (("client", 0), ("bg.", 1), ("dev.", 2), ("journal", 3), ("flusher", 4))


def _track_rank(track: str) -> Tuple[int, str]:
    for prefix, rank in _TRACK_RANKS:
        if track == prefix or track.startswith(prefix):
            return rank, track
    return len(_TRACK_RANKS), track


def _us(ns: int) -> float:
    return round(ns / 1000.0, 3)


def _safe_attr(value: object) -> object:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.decode("latin-1")
    return str(value)


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def chrome_trace_document(
    tracer: Tracer,
    meta: Optional[Dict[str, object]] = None,
    clip: Optional[Tuple[int, int]] = None,
    limit: Optional[int] = None,
) -> Dict[str, object]:
    """Render the tracer's trace as a Chrome trace-event document.

    ``clip=(lo, hi)`` keeps only events intersecting that virtual-ns
    window; ``limit`` keeps the last N timed events (closest to the
    window's end) — both are how the crash matrix attaches a bounded
    snapshot around a violated crash point.
    """

    def in_window(start: int, end: int) -> bool:
        if clip is None:
            return True
        lo, hi = clip
        return end >= lo and start <= hi

    timed: List[Tuple[float, int, str, Dict[str, object]]] = []
    tracks = set()

    for span in tracer.spans:
        if span.end_ns is None or not in_window(span.start_ns, span.end_ns):
            continue
        track = span.track or "client"
        tracks.add(track)
        args: Dict[str, object] = {"trace": span.trace_id}
        for key, value in span.attrs.items():
            args[key] = _safe_attr(value)
        timed.append(
            (
                _us(span.start_ns),
                0,
                track,
                {
                    "name": span.name,
                    "cat": _category(span.name),
                    "ph": "X",
                    "ts": _us(span.start_ns),
                    "dur": _us(span.duration_ns),
                    "pid": 0,
                    "args": args,
                },
            )
        )

    for io in tracer.io_slices:
        if not in_window(io.start_ns, io.end_ns):
            continue
        track = "dev.barrier" if io.channel < 0 else f"dev.ch{io.channel}"
        tracks.add(track)
        args = {"bytes": io.nbytes}
        if io.stream is not None:
            args["stream"] = _safe_attr(io.stream)
        timed.append(
            (
                _us(io.start_ns),
                1,
                track,
                {
                    "name": io.kind,
                    "cat": "device",
                    "ph": "X",
                    "ts": _us(io.start_ns),
                    "dur": _us(max(io.end_ns - io.start_ns, 0)),
                    "pid": 0,
                    "args": args,
                },
            )
        )

    for flow in tracer.flows:
        if not in_window(flow.src_ts, flow.dst_ts):
            continue
        tracks.add(flow.src_track)
        tracks.add(flow.dst_track)
        timed.append(
            (
                _us(flow.src_ts),
                2,
                flow.src_track,
                {
                    "name": flow.name,
                    "cat": "causal",
                    "ph": "s",
                    "id": flow.flow_id,
                    "ts": _us(flow.src_ts),
                    "pid": 0,
                },
            )
        )
        timed.append(
            (
                _us(flow.dst_ts),
                3,
                flow.dst_track,
                {
                    "name": flow.name,
                    "cat": "causal",
                    "ph": "f",
                    "bp": "e",
                    "id": flow.flow_id,
                    "ts": _us(flow.dst_ts),
                    "pid": 0,
                },
            )
        )

    # Track ids are assigned by a fixed ordering (client, bg threads,
    # device channels, journal, flusher, rest alphabetically), so the
    # export is stable regardless of event interleaving.
    tids = {
        track: index + 1
        for index, track in enumerate(sorted(tracks, key=_track_rank))
    }

    timed.sort(key=lambda item: (item[0], tids[item[2]], item[1], item[3]["name"]))
    if limit is not None and len(timed) > limit:
        timed = timed[-limit:]

    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "repro"},
        }
    ]
    used = sorted({item[2] for item in timed}, key=lambda t: tids[t])
    for track in used:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    for _, _, track, event in timed:
        event["tid"] = tids[track]
        events.append(event)

    other: Dict[str, object] = dict(meta) if meta else {}
    other.update(
        {
            "spans_dropped": tracer.spans_dropped,
            "io_dropped": tracer.io_dropped,
            "flows_dropped": tracer.flows_dropped,
        }
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome_trace(doc: Dict[str, object]) -> int:
    """Validate a document against the trace-event schema we emit.

    Checks the structural contract Perfetto relies on: a ``traceEvents``
    array whose members carry a name, a known phase, integer pid/tid and
    non-negative timestamps/durations; flow events must carry an id and
    metadata events a ``name`` arg. Returns the event count; raises
    :class:`ValueError` on the first violation.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must have a traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: missing string name")
        ph = event.get("ph")
        if ph not in ("X", "M", "s", "f"):
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"{where}: missing integer pid")
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(f"{where}: bad {field} {value!r}")
            if not isinstance(event.get("tid"), int):
                raise ValueError(f"{where}: missing integer tid")
        elif ph in ("s", "f"):
            if "id" not in event:
                raise ValueError(f"{where}: flow event without id")
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError(f"{where}: flow event without ts")
        elif ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise ValueError(f"{where}: metadata event without args.name")
    return len(events)


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Validate and write the Chrome trace to ``path``; returns the doc.

    The file is byte-deterministic for a deterministic run: sorted keys,
    fixed separators, trailing newline.
    """
    doc = chrome_trace_document(tracer, meta=meta)
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return doc
