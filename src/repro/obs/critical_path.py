"""Critical-path latency attribution for the LSM write path.

Every traced ``db.write`` root span carries child segment spans that
partition its latency: writer-lock wait, stall spans (L0 slowdown,
memtable full, L0 stop), the memtable switch (WAL file creation),
the WAL append, the optional WAL fsync, and the memtable insert CPU
time. :func:`analyze_write_path` folds those segments across all traced
operations into a per-segment p50/p99 attribution table, and reports
what share of the *tail* (operations at or beyond the exact p99 total
latency) each segment explains — the "which layer made this p99 put
slow?" answer.

Time an operation spends that no child explains shows up as the
``unattributed`` residual, so the table always sums to 100% and a
coverage hole is visible rather than silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricRegistry

#: segment child-span names the write path emits, in pipeline order
WRITE_SEGMENTS = (
    "writer_lock",
    "stall.l0_slowdown",
    "stall.memtable_full",
    "stall.l0_stop",
    "memtable.switch",
    "wal.append",
    "wal.sync",
    "memtable.insert",
)

#: the residual bucket — total minus all named children
UNATTRIBUTED = "unattributed"


def _pct(sorted_vals: Sequence[int], q: float) -> int:
    """Exact nearest-rank percentile over a sorted sample."""
    if not sorted_vals:
        return 0
    rank = max(int(math.ceil(q / 100.0 * len(sorted_vals))), 1)
    return sorted_vals[rank - 1]


@dataclass
class SegmentStat:
    """One attribution row: a named slice of the write path."""

    name: str
    count: int = 0
    total_ns: int = 0
    p50_ns: int = 0
    p99_ns: int = 0
    #: fraction of total tail (>= p99) latency this segment explains
    share_p99: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "total_ns": self.total_ns,
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
            "share_p99": round(self.share_p99, 4),
        }


@dataclass
class CriticalPathReport:
    """Attribution of operation latency across named segments."""

    op: str = "db.write"
    count: int = 0
    total_p50_ns: int = 0
    total_p99_ns: int = 0
    tail_ops: int = 0
    #: fraction of tail latency attributed to *named* segments
    coverage_p99: float = 0.0
    segments: List[SegmentStat] = field(default_factory=list)

    def segment(self, name: str) -> Optional[SegmentStat]:
        for seg in self.segments:
            if seg.name == name:
                return seg
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "count": self.count,
            "total_p50_ns": self.total_p50_ns,
            "total_p99_ns": self.total_p99_ns,
            "tail_ops": self.tail_ops,
            "coverage_p99": round(self.coverage_p99, 4),
            "segments": [seg.to_dict() for seg in self.segments],
        }


def analyze_write_path(
    registry: MetricRegistry, op: str = "db.write"
) -> CriticalPathReport:
    """Decompose every traced ``op`` root span into segment attribution."""
    report = CriticalPathReport(op=op)
    ops: List[Dict[str, int]] = []
    totals: List[int] = []
    for span in registry.spans:
        if span.name != op or span.end_ns is None:
            continue
        total = span.duration_ns
        parts: Dict[str, int] = {"__total__": total}
        attributed = 0
        for child in span.children:
            if child.end_ns is None:
                continue
            dur = child.duration_ns
            parts[child.name] = parts.get(child.name, 0) + dur
            attributed += dur
        parts[UNATTRIBUTED] = max(total - attributed, 0)
        ops.append(parts)
        totals.append(total)
    report.count = len(ops)
    if not ops:
        return report

    totals.sort()
    report.total_p50_ns = _pct(totals, 50)
    report.total_p99_ns = _pct(totals, 99)

    tail = [parts for parts in ops if parts["__total__"] >= report.total_p99_ns]
    report.tail_ops = len(tail)
    tail_total = sum(parts["__total__"] for parts in tail)
    tail_named = 0

    names = list(WRITE_SEGMENTS)
    for parts in ops:
        for name in parts:
            if name not in names and name not in ("__total__", UNATTRIBUTED):
                names.append(name)
    names.append(UNATTRIBUTED)

    for name in names:
        values = sorted(parts.get(name, 0) for parts in ops)
        seg = SegmentStat(
            name=name,
            count=sum(1 for parts in ops if parts.get(name, 0) > 0),
            total_ns=sum(values),
            p50_ns=_pct(values, 50),
            p99_ns=_pct(values, 99),
        )
        seg_tail = sum(parts.get(name, 0) for parts in tail)
        seg.share_p99 = seg_tail / tail_total if tail_total else 0.0
        if name != UNATTRIBUTED:
            tail_named += seg_tail
        report.segments.append(seg)

    report.coverage_p99 = tail_named / tail_total if tail_total else 1.0
    return report


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

#: background debt counters shown under the table — latency the write
#: path *didn't* pay thanks to non-blocking design, but someone did
_DEBT_ROWS = (
    ("bg.stall_ns", "compaction queue stall"),
    ("device.queue_ns", "device channel queueing"),
    ("fs.throttle_ns", "writeback throttling"),
)


def _fmt_us(ns: int) -> str:
    return f"{ns / 1000.0:10.2f}"


def render_critical_path(
    report: CriticalPathReport,
    registry: Optional[MetricRegistry] = None,
) -> str:
    """Fixed-width critical-path attribution table."""
    title = f"critical path: {report.op} ({report.count} ops)"
    lines = [title, "-" * len(title)]
    if not report.count:
        lines.append("(no traced operations)")
        return "\n".join(lines)
    lines.append(
        f"total latency   p50 {report.total_p50_ns / 1000.0:.2f} us   "
        f"p99 {report.total_p99_ns / 1000.0:.2f} us   "
        f"tail ops {report.tail_ops}"
    )
    header = f"{'segment':<22} {'hits':>6} {'p50_us':>10} {'p99_us':>10} {'p99_share':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for seg in report.segments:
        lines.append(
            f"{seg.name:<22} {seg.count:>6} {_fmt_us(seg.p50_ns)} "
            f"{_fmt_us(seg.p99_ns)} {seg.share_p99 * 100:>9.1f}%"
        )
    lines.append("-" * len(header))
    lines.append(
        f"named-segment coverage of p99 tail: {report.coverage_p99 * 100:.1f}%"
    )
    if registry is not None and registry.enabled:
        snap = registry.snapshot()
        counters = snap.get("counters", {})
        debt = []
        for key, label in _DEBT_ROWS:
            value = counters.get(key, 0)
            if value:
                debt.append(f"  {label:<28} {value / 1e6:10.2f} ms")
        journal_ns = 0
        journal_commits = 0
        hist = snap.get("histograms", {}).get("span.journal.commit_ns")
        if hist:
            journal_ns = hist.get("sum", 0)
            journal_commits = hist.get("count", 0)
        if journal_ns:
            debt.append(
                f"  {'journal commit (async)':<28} {journal_ns / 1e6:10.2f} ms"
                f"  ({journal_commits} commits)"
            )
        if debt:
            lines.append("")
            lines.append("background debt (off the write path):")
            lines.extend(debt)
    return "\n".join(lines)
