"""DRAM page cache model.

The cache models *timing and durability state*, not data content (file
bytes live in the inode regardless). It tracks which 64 KiB pages of each
inode are resident, evicts clean pages LRU when over capacity, and keeps a
global dirty-byte count. When the dirty ratio crosses a threshold (10 % by
default, as in the paper), it notifies the journal so an asynchronous
commit can be triggered early — the second of Ext4's two async-commit
conditions (Section 2.2).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Tuple

PAGE_SIZE = 64 * 1024  # coarse pages keep LRU bookkeeping cheap

PageKey = Tuple[int, int]  # (ino, page_index)


class PageCache:
    """Resident-page tracking with LRU eviction of clean pages.

    ``capacity_bytes`` bounds resident pages; dirty pages are pinned (the
    journal's writeback cleans them). ``on_dirty_threshold`` fires once per
    crossing of ``dirty_ratio`` and re-arms after dirty bytes fall below.
    """

    def __init__(
        self,
        capacity_bytes: int,
        dirty_ratio: float = 0.10,
        on_dirty_threshold: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if not 0.0 < dirty_ratio <= 1.0:
            raise ValueError(f"dirty_ratio out of range: {dirty_ratio}")
        self.capacity_bytes = capacity_bytes
        self.dirty_ratio = dirty_ratio
        self.on_dirty_threshold = on_dirty_threshold
        self._pages: "OrderedDict[PageKey, bool]" = OrderedDict()  # key -> dirty
        self._dirty_bytes = 0
        self._threshold_armed = True
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    @property
    def dirty_bytes(self) -> int:
        return self._dirty_bytes

    @property
    def dirty_threshold_bytes(self) -> int:
        return int(self.capacity_bytes * self.dirty_ratio)

    def snapshot(self) -> "dict[str, object]":
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "resident_bytes": self.resident_bytes,
            "dirty_bytes": self._dirty_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def _page_range(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            return range(0)
        first = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        return range(first, last + 1)

    def _evict_if_needed(self) -> None:
        while self.resident_bytes > self.capacity_bytes:
            victim = None
            for key, dirty in self._pages.items():
                if not dirty:
                    victim = key
                    break
            if victim is None:
                # Everything resident is dirty; allow transient overshoot —
                # the journal's next writeback will clean pages.
                break
            del self._pages[victim]
            self.evictions += 1

    def _maybe_fire_threshold(self) -> None:
        threshold = self.dirty_threshold_bytes
        if self._dirty_bytes >= threshold:
            if self._threshold_armed and self.on_dirty_threshold is not None:
                self._threshold_armed = False
                self.on_dirty_threshold()
        else:
            self._threshold_armed = True

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def write(self, ino: int, offset: int, nbytes: int) -> None:
        """Record a buffered write: pages become resident and dirty."""
        for page in self._page_range(offset, nbytes):
            key = (ino, page)
            was_dirty = self._pages.pop(key, None)
            if was_dirty is None:
                self._dirty_bytes += PAGE_SIZE
            elif not was_dirty:
                self._dirty_bytes += PAGE_SIZE
            self._pages[key] = True
        self._evict_if_needed()
        self._maybe_fire_threshold()

    def read_misses(self, ino: int, offset: int, nbytes: int) -> int:
        """Record a read; returns the number of bytes that missed.

        Missing pages become resident (read from the device by the caller).
        """
        miss_pages = 0
        for page in self._page_range(offset, nbytes):
            key = (ino, page)
            dirty = self._pages.pop(key, None)
            if dirty is None:
                miss_pages += 1
                self._pages[key] = False
                self.misses += 1
            else:
                self._pages[key] = dirty
                self.hits += 1
        self._evict_if_needed()
        return miss_pages * PAGE_SIZE

    def clean_inode(self, ino: int, up_to_offset: int) -> None:
        """Mark an inode's pages clean after writeback (keeps residency)."""
        last_page = (max(up_to_offset, 1) - 1) // PAGE_SIZE
        for page in range(0, last_page + 1):
            key = (ino, page)
            if self._pages.get(key):
                self._pages[key] = False
                self._dirty_bytes -= PAGE_SIZE
        if self._dirty_bytes < 0:
            self._dirty_bytes = 0
        self._maybe_fire_threshold()

    def drop_inode(self, ino: int) -> None:
        """Remove every page of an inode (unlink / crash)."""
        stale = [key for key in self._pages if key[0] == ino]
        for key in stale:
            if self._pages[key]:
                self._dirty_bytes -= PAGE_SIZE
            del self._pages[key]
        if self._dirty_bytes < 0:
            self._dirty_bytes = 0

    def drop_all(self) -> None:
        """Empty the cache (power failure)."""
        self._pages.clear()
        self._dirty_bytes = 0
        self._threshold_armed = True
