"""DRAM page cache model.

The cache models *timing and durability state*, not data content (file
bytes live in the inode regardless). It tracks which 64 KiB pages of each
inode are resident, evicts clean pages LRU when over capacity, and keeps a
global dirty-byte count. When the dirty ratio crosses a threshold (10 % by
default, as in the paper), it notifies the journal so an asynchronous
commit can be triggered early — the second of Ext4's two async-commit
conditions (Section 2.2).

Hot-path notes: ``write``/``read_misses`` run per simulated I/O, so the
LRU reshuffle uses ``move_to_end`` and eviction is guarded by an O(1)
over-capacity check. ``clean_inode``/``drop_inode`` consult per-inode
page indexes instead of scanning every resident (or every possible)
page; the indexes are pure bookkeeping — LRU order, dirty accounting and
eviction decisions are unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Set, Tuple

PAGE_SIZE = 64 * 1024  # coarse pages keep LRU bookkeeping cheap

PageKey = Tuple[int, int]  # (ino, page_index)


class PageCache:
    """Resident-page tracking with LRU eviction of clean pages.

    ``capacity_bytes`` bounds resident pages; dirty pages are pinned (the
    journal's writeback cleans them). ``on_dirty_threshold`` fires once per
    crossing of ``dirty_ratio`` and re-arms after dirty bytes fall below.
    """

    def __init__(
        self,
        capacity_bytes: int,
        dirty_ratio: float = 0.10,
        on_dirty_threshold: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if not 0.0 < dirty_ratio <= 1.0:
            raise ValueError(f"dirty_ratio out of range: {dirty_ratio}")
        self.capacity_bytes = capacity_bytes
        self.dirty_ratio = dirty_ratio
        self.on_dirty_threshold = on_dirty_threshold
        self._pages: "OrderedDict[PageKey, bool]" = OrderedDict()  # key -> dirty
        #: resident page indexes per inode (drop_inode avoids a full scan)
        self._by_ino: Dict[int, Set[int]] = {}
        #: dirty page indexes per inode (clean_inode touches only these)
        self._dirty_by_ino: Dict[int, Set[int]] = {}
        self._dirty_bytes = 0
        self._threshold_armed = True
        #: len(_pages) above which eviction kicks in; len * PAGE_SIZE >
        #: capacity  <=>  len > capacity // PAGE_SIZE
        self._capacity_pages = capacity_bytes // PAGE_SIZE
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    @property
    def dirty_bytes(self) -> int:
        return self._dirty_bytes

    @property
    def dirty_threshold_bytes(self) -> int:
        return int(self.capacity_bytes * self.dirty_ratio)

    def snapshot(self) -> "dict[str, object]":
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "resident_bytes": self.resident_bytes,
            "dirty_bytes": self._dirty_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def _page_range(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            return range(0)
        first = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        return range(first, last + 1)

    def _evict_if_needed(self) -> None:
        pages = self._pages
        capacity = self._capacity_pages
        by_ino = self._by_ino
        while len(pages) > capacity:
            if self._dirty_bytes >= len(pages) * PAGE_SIZE:
                # Everything resident is dirty; allow transient overshoot —
                # the journal's next writeback will clean pages.
                break
            victim = None
            for key, dirty in pages.items():
                if not dirty:
                    victim = key
                    break
            if victim is None:
                break
            del pages[victim]
            ino_pages = by_ino.get(victim[0])
            if ino_pages is not None:
                ino_pages.discard(victim[1])
                if not ino_pages:
                    del by_ino[victim[0]]
            self.evictions += 1

    def _maybe_fire_threshold(self) -> None:
        if self._dirty_bytes >= self.dirty_threshold_bytes:
            if self._threshold_armed and self.on_dirty_threshold is not None:
                self._threshold_armed = False
                self.on_dirty_threshold()
        else:
            self._threshold_armed = True

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def write(self, ino: int, offset: int, nbytes: int) -> None:
        """Record a buffered write: pages become resident and dirty."""
        if nbytes > 0:
            pages = self._pages
            move_to_end = pages.move_to_end
            ino_pages = self._by_ino.get(ino)
            if ino_pages is None:
                ino_pages = self._by_ino[ino] = set()
            dirty_pages = self._dirty_by_ino.get(ino)
            if dirty_pages is None:
                dirty_pages = self._dirty_by_ino[ino] = set()
            first = offset // PAGE_SIZE
            last = (offset + nbytes - 1) // PAGE_SIZE
            for page in range(first, last + 1):
                key = (ino, page)
                was_dirty = pages.get(key)
                if was_dirty is None:
                    pages[key] = True
                    ino_pages.add(page)
                    dirty_pages.add(page)
                    self._dirty_bytes += PAGE_SIZE
                else:
                    if not was_dirty:
                        pages[key] = True
                        dirty_pages.add(page)
                        self._dirty_bytes += PAGE_SIZE
                    move_to_end(key)
        if len(self._pages) > self._capacity_pages:
            self._evict_if_needed()
        self._maybe_fire_threshold()

    def read_misses(self, ino: int, offset: int, nbytes: int) -> int:
        """Record a read; returns the number of bytes that missed.

        Missing pages become resident (read from the device by the caller).
        """
        miss_pages = 0
        pages = self._pages
        if nbytes > 0:
            move_to_end = pages.move_to_end
            ino_pages = self._by_ino.get(ino)
            if ino_pages is None:
                ino_pages = self._by_ino[ino] = set()
            first = offset // PAGE_SIZE
            last = (offset + nbytes - 1) // PAGE_SIZE
            for page in range(first, last + 1):
                key = (ino, page)
                if key in pages:
                    move_to_end(key)
                    self.hits += 1
                else:
                    miss_pages += 1
                    pages[key] = False
                    ino_pages.add(page)
                    self.misses += 1
        if len(pages) > self._capacity_pages:
            self._evict_if_needed()
        return miss_pages * PAGE_SIZE

    def clean_inode(self, ino: int, up_to_offset: int) -> None:
        """Mark an inode's pages clean after writeback (keeps residency)."""
        dirty_pages = self._dirty_by_ino.get(ino)
        if dirty_pages:
            last_page = (max(up_to_offset, 1) - 1) // PAGE_SIZE
            pages = self._pages
            cleaned = [page for page in dirty_pages if page <= last_page]
            for page in cleaned:
                pages[(ino, page)] = False
                dirty_pages.discard(page)
            if not dirty_pages:
                del self._dirty_by_ino[ino]
            self._dirty_bytes -= len(cleaned) * PAGE_SIZE
            if self._dirty_bytes < 0:
                self._dirty_bytes = 0
        self._maybe_fire_threshold()

    def drop_inode(self, ino: int) -> None:
        """Remove every page of an inode (unlink / crash)."""
        ino_pages = self._by_ino.pop(ino, None)
        if ino_pages is None:
            return
        dirty_pages = self._dirty_by_ino.pop(ino, None)
        pages = self._pages
        for page in ino_pages:
            del pages[(ino, page)]
        if dirty_pages:
            self._dirty_bytes -= len(dirty_pages) * PAGE_SIZE
            if self._dirty_bytes < 0:
                self._dirty_bytes = 0

    def drop_all(self) -> None:
        """Empty the cache (power failure)."""
        self._pages.clear()
        self._by_ino.clear()
        self._dirty_by_ino.clear()
        self._dirty_bytes = 0
        self._threshold_armed = True
