"""The paper's kernel extension: two tables, two syscalls.

NobLSM adds ~130 LoC to Linux/Ext4 (Section 4.2):

- a *Pending Table* of inodes NobLSM asked the kernel to track, and a
  *Committed Table* of tracked inodes whose journal transaction has
  committed;
- ``check_commit(inodes)`` — start tracking inodes (fills Pending);
- ``is_committed(inode)`` — query whether an inode moved to Committed.

On commit completion JBD2 moves the transaction's tracked inodes from
Pending to Committed; on unlink Ext4 erases the inode's entry, which keeps
the tables small and avoids cyclic dependencies from inode reuse
(Section 4.3).

Both tables live in (simulated) kernel memory: a crash clears them.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.fs.ext4 import Ext4
from repro.fs.jbd2 import Transaction


class NobSyscalls:
    """Kernel-side state and the two syscalls, bound to one file system."""

    def __init__(self, fs: Ext4) -> None:
        self.fs = fs
        self.pending: Set[int] = set()
        self.committed: Set[int] = set()
        self.check_commit_calls = 0
        self.is_committed_calls = 0
        self.obs = fs.obs
        self._observe = self.obs.enabled
        if self._observe:
            self.obs.register_source("syscalls", self.snapshot)
            self._check_commit_counter = self.obs.counter("syscalls.check_commit")
            self._is_committed_counter = self.obs.counter("syscalls.is_committed")
        fs.nob_syscalls = self
        fs.journal.on_commit.append(self._on_journal_commit)

    # ------------------------------------------------------------------
    # kernel hooks
    # ------------------------------------------------------------------

    def _on_journal_commit(self, txn: Transaction, when: int) -> None:
        """Move inodes covered by the committed transaction to Committed.

        An inode that was re-dirtied after joining the transaction stays
        Pending — its newest data is not durable yet. (SSTables are
        immutable so this never triggers for NobLSM's files, but the
        kernel tables must be safe for any user.)
        """
        moved = set()
        for ino in self.pending & txn.inodes:
            inode = self.fs._inodes.get(ino)
            if inode is not None and inode.dirty_bytes > 0:
                continue
            moved.add(ino)
        self.pending -= moved
        self.committed |= moved

    def on_unlink(self, ino: int) -> None:
        """Erase table entries when the file is deleted (Section 4.3)."""
        self.pending.discard(ino)
        self.committed.discard(ino)

    def reset(self) -> None:
        """Kernel tables are volatile; a crash empties them."""
        self.pending.clear()
        self.committed.clear()

    def snapshot(self) -> "dict[str, object]":
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "check_commit_calls": self.check_commit_calls,
            "is_committed_calls": self.is_committed_calls,
            "pending": len(self.pending),
            "committed": len(self.committed),
        }

    # ------------------------------------------------------------------
    # the two syscalls
    # ------------------------------------------------------------------

    def check_commit(self, inos: Iterable[int], at: int) -> int:
        """Syscall 1: tell Ext4 which inodes to start tracking.

        Tracking covers the inode's *current* state: an inode that still
        has delalloc-dirty data or sits in an open transaction goes to
        (or back to) the Pending table; an inode that is fully durable
        goes straight to Committed.
        """
        self.check_commit_calls += 1
        if self._observe:
            self._check_commit_counter.inc()
        for ino in inos:
            inode = self.fs._inodes.get(ino)
            dirty = inode is not None and inode.dirty_bytes > 0
            txn = self.fs.journal.txn_of(ino)
            if dirty or txn is not None:
                self.pending.add(ino)
                self.committed.discard(ino)
            else:
                self.committed.add(ino)
                self.pending.discard(ino)
        return at + self.fs.cpu.syscall_ns

    def is_committed(self, ino: int, at: int) -> "tuple[bool, int]":
        """Syscall 2: has the inode moved to the Committed table?"""
        self.is_committed_calls += 1
        if self._observe:
            self._is_committed_counter.inc()
        self.fs.events.run_until(max(at, self.fs.clock.now))
        return ino in self.committed, at + self.fs.cpu.syscall_ns
