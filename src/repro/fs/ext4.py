"""Append-only Ext4 model with delayed allocation and exact crash semantics.

Files are append-only — exactly the access pattern of an LSM-tree (WAL,
SSTables and MANIFEST are appended, CURRENT is replaced via rename). That
restriction buys precise durability tracking: an inode's device-resident
data is a *prefix* (``durable_len``) and its crash-visible size is the
prefix recorded by the last committed journal transaction
(``committed_size``). ``data=ordered`` plus delayed allocation guarantee
``durable_len >= committed_size`` whenever a commit applies, so after a
power failure a file is simply truncated to its committed size.

The write path models ext4's *delayed allocation*: a buffered append
only dirties pages and marks the inode delalloc-dirty. Data reaches the
device through **writeback** — the periodic flusher daemon, dirty-page
pressure, or an explicit fsync — and only then does the inode join the
running journal transaction. Consequently an fsync pays for its own
file's writeback plus one cheap commit, never for unrelated dirty data
(no "fsync entanglement"); and a file is crash-recoverable once the
flusher has written it back and the following asynchronous commit has
journaled its inode — the implicit durability NobLSM builds on.

Content is stored as extents that are either real bytes or zero-runs, so
multi-gigabyte experiments (Figure 2a) run without allocating gigabytes.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.fs.jbd2 import Journal, NsOp, NsOpKind, Transaction
from repro.fs.pagecache import PageCache
from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.obs.spans import NULL_SPAN
from repro.sim.events import EventQueue
from repro.sim.latency import CpuProfile, DEFAULT_CPU
from repro.sim.ssd import SSD
from repro.sim.stats import SyncStats


class FsError(Exception):
    """Base class for file-system errors."""


class FileNotFound(FsError):
    """Path does not exist."""


class FileExists(FsError):
    """Path already exists."""


class NotAppendOnly(FsError):
    """An operation violated the append-only file model."""


Payload = Union[bytes, int]  # real bytes, or a zero-run length


class _ExtentList:
    """Append-only byte content as (start, payload) extents."""

    __slots__ = ("_starts", "_payloads", "_size")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._payloads: List[Payload] = []
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def append(self, data: bytes) -> None:
        if data:
            self._starts.append(self._size)
            self._payloads.append(bytes(data))
            self._size += len(data)

    def append_zeros(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative zero-run {nbytes}")
        if nbytes:
            self._starts.append(self._size)
            self._payloads.append(int(nbytes))
            self._size += nbytes

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or nbytes < 0:
            raise ValueError(f"bad read range ({offset}, {nbytes})")
        end = min(offset + nbytes, self._size)
        if offset >= end:
            return b""
        pieces: List[bytes] = []
        idx = bisect.bisect_right(self._starts, offset) - 1
        pos = offset
        while pos < end and idx < len(self._payloads):
            start = self._starts[idx]
            payload = self._payloads[idx]
            length = payload if isinstance(payload, int) else len(payload)
            lo = pos - start
            hi = min(end - start, length)
            if isinstance(payload, int):
                pieces.append(b"\x00" * (hi - lo))
            else:
                pieces.append(payload[lo:hi])
            pos = start + hi
            idx += 1
        return b"".join(pieces)

    def truncate(self, new_size: int) -> None:
        """Drop everything past ``new_size`` (crash recovery)."""
        if new_size >= self._size:
            return
        if new_size < 0:
            raise ValueError(f"negative truncate {new_size}")
        keep = bisect.bisect_right(self._starts, max(new_size - 1, 0))
        del self._starts[keep:]
        del self._payloads[keep:]
        if self._payloads:
            start = self._starts[-1]
            payload = self._payloads[-1]
            cut = new_size - start
            if isinstance(payload, int):
                self._payloads[-1] = cut
            else:
                self._payloads[-1] = payload[:cut]
            if cut == 0:
                del self._starts[-1]
                del self._payloads[-1]
        self._size = new_size


@dataclass(slots=True)
class Inode:
    """In-memory inode: live content plus durability watermarks."""

    ino: int
    data: _ExtentList = field(default_factory=_ExtentList)
    durable_len: int = 0  # bytes written back to the device
    committed_size: int = 0  # size recorded by the last committed txn
    ever_committed: bool = False
    nlink: int = 1
    last_read_end: int = -1  # sequential-read detection

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dirty_bytes(self) -> int:
        return max(self.size - self.durable_len, 0)


class File:
    """Handle to an open file. All mutating calls are time-explicit."""

    __slots__ = ("_fs", "path", "_inode", "closed")

    def __init__(self, fs: "Ext4", path: str, inode: Inode) -> None:
        self._fs = fs
        self.path = path
        self._inode = inode
        self.closed = False

    @property
    def ino(self) -> int:
        return self._inode.ino

    @property
    def size(self) -> int:
        return self._inode.size

    def append(self, data: bytes, at: int) -> int:
        return self._fs.append(self, data, at)

    def append_zeros(self, nbytes: int, at: int) -> int:
        return self._fs.append_zeros(self, nbytes, at)

    def write_direct(self, nbytes: int, at: int, data: bytes = b"") -> int:
        return self._fs.write_direct(self, nbytes, at, data)

    def read(self, offset: int, nbytes: int, at: int) -> Tuple[bytes, int]:
        return self._fs.read(self, offset, nbytes, at)

    def fsync(self, at: int, reason: str = "fsync") -> int:
        return self._fs.fsync(self, at, reason)

    def fdatasync(self, at: int, reason: str = "fdatasync") -> int:
        # LevelDB calls fdatasync; on Ext4 it behaves almost identically
        # to fsync (Section 2.2), and so it does here.
        return self._fs.fsync(self, at, reason)

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:
        return f"File({self.path!r}, ino={self.ino}, size={self.size})"


class Ext4:
    """The simulated file system.

    One instance owns the namespace, the inodes, the page cache and is
    attached to a :class:`~repro.fs.jbd2.Journal`. Every blocking call
    takes the caller's submission time ``at``, first drains due background
    events, and returns the completion time.
    """

    #: default flusher wake-up period (virtual ns); scaled runs divide it
    DEFAULT_WRITEBACK_INTERVAL = 1_000_000_000
    #: default writeback batch (Linux submits ~16 MiB at a time); a sync
    #: arriving mid-writeback queues behind at most one batch, not the
    #: whole dirty backlog
    DEFAULT_WRITEBACK_CHUNK = 16 * 1024 * 1024

    def __init__(
        self,
        events: EventQueue,
        device: SSD,
        journal: Journal,
        pagecache: PageCache,
        cpu: CpuProfile = DEFAULT_CPU,
        sync_stats: Optional[SyncStats] = None,
        writeback_interval_ns: int = DEFAULT_WRITEBACK_INTERVAL,
        writeback_chunk_bytes: int = DEFAULT_WRITEBACK_CHUNK,
        hard_dirty_ratio: float = 0.25,
        obs: Optional[MetricRegistry] = None,
    ) -> None:
        self.events = events
        self.clock = events.clock
        self.device = device
        self.journal = journal
        self.pagecache = pagecache
        self.cpu = cpu
        self.sync_stats = sync_stats if sync_stats is not None else SyncStats()
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._observe = self.obs.enabled
        if self._observe:
            self.obs.register_source("sync", self.sync_stats.snapshot)
            self.obs.register_source("pagecache", self.pagecache.snapshot)
            self.obs.register_source("fs", self.snapshot)
            self._fsync_hist = self.obs.histogram("fs.fsync_ns")
            self._writeback_bytes = self.obs.counter("fs.writeback_bytes")
            self._throttle_counter = self.obs.counter("fs.throttle_ns")
        self.writeback_interval_ns = max(int(writeback_interval_ns), 1)
        self.writeback_chunk_bytes = max(int(writeback_chunk_bytes), 4096)
        self.hard_dirty_ratio = hard_dirty_ratio
        # balance_dirty_pages threshold, computed once (capacity and
        # ratio are fixed at construction)
        self._hard_dirty_limit = int(
            pagecache.capacity_bytes * hard_dirty_ratio
        )
        self._namespace: Dict[str, int] = {}
        self._durable_namespace: Dict[str, int] = {}
        self._inodes: Dict[int, Inode] = {}
        self._ino_counter = itertools.count(1)
        self._delalloc: "set[int]" = set()  # inodes with dirty data
        self._flusher_timer = None
        self._flusher_busy_until = 0  # previous round's device completion
        self.flusher_runs = 0
        self.throttle_ns = 0
        self.crashes = 0
        journal.datasource = self
        pagecache.on_dirty_threshold = self._on_dirty_pressure

    # ------------------------------------------------------------------
    # journal datasource protocol
    # ------------------------------------------------------------------

    def dirty_extent(self, ino: int) -> Tuple[int, int]:
        inode = self._inodes.get(ino)
        if inode is None:
            return (0, 0)
        return (inode.durable_len, inode.size)

    def apply_commit(self, txn: Transaction, when: int) -> None:
        """Make a committed transaction's effects crash-recoverable."""
        for ino, committed in txn.commit_sizes.items():
            inode = self._inodes.get(ino)
            if inode is None:
                continue
            if committed > inode.durable_len:
                inode.durable_len = committed
            if committed > inode.committed_size:
                inode.committed_size = committed
            inode.ever_committed = True
            self.pagecache.clean_inode(ino, committed)
        for op in txn.ns_ops:
            if op.kind is NsOpKind.CREATE:
                self._durable_namespace[op.path] = op.ino
            elif op.kind is NsOpKind.UNLINK:
                self._durable_namespace.pop(op.path, None)
            elif op.kind is NsOpKind.RENAME:
                ino = self._durable_namespace.pop(op.path, op.ino)
                self._durable_namespace[op.dst_path] = ino

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------

    def _tick(self, at: int) -> int:
        """Fire due background events, return the (possibly same) time."""
        self.events.run_until(max(at, self.clock.now))
        return at

    def exists(self, path: str) -> bool:
        return path in self._namespace

    def list_dir(self, prefix: str) -> List[str]:
        """Paths that start with ``prefix`` (our namespace is flat)."""
        return sorted(p for p in self._namespace if p.startswith(prefix))

    def stat_size(self, path: str) -> int:
        return self._get_inode(path).size

    def durable_namespace(self) -> Dict[str, int]:
        """The crash-surviving view of the namespace: path -> inode number.

        A path appears here once the journal transaction covering its
        create (or rename) has committed; an unlinked path stays until
        the unlink's transaction commits. This is exactly the namespace
        :meth:`crash` restores.
        """
        return dict(self._durable_namespace)

    def durable_stat(self, path: str) -> Optional[int]:
        """Crash-durable size of ``path``, or ``None`` if it would vanish.

        The durable size is the prefix recorded by the last committed
        journal transaction (``committed_size``) — the length the file
        would be truncated to by a power failure right now. Paths whose
        create never committed return ``None``: they do not survive.
        """
        ino = self._durable_namespace.get(path)
        if ino is None:
            return None
        inode = self._inodes.get(ino)
        if inode is None:
            return 0
        return inode.committed_size

    def _get_inode(self, path: str) -> Inode:
        ino = self._namespace.get(path)
        if ino is None:
            raise FileNotFound(path)
        return self._inodes[ino]

    def create(self, path: str, at: int) -> Tuple[File, int]:
        """Create a new empty file; journals the namespace update."""
        self._tick(at)
        if path in self._namespace:
            raise FileExists(path)
        inode = Inode(ino=next(self._ino_counter))
        self._inodes[inode.ino] = inode
        self._namespace[path] = inode.ino
        self.journal.add_ns_op(NsOp(NsOpKind.CREATE, path, inode.ino))
        return File(self, path, inode), at + self.cpu.syscall_ns

    def open(self, path: str, at: int) -> Tuple[File, int]:
        self._tick(at)
        inode = self._get_inode(path)
        return File(self, path, inode), at + self.cpu.syscall_ns

    def unlink(self, path: str, at: int) -> int:
        """Remove a path; durable only once the journal commits."""
        self._tick(at)
        inode = self._get_inode(path)
        del self._namespace[path]
        inode.nlink = 0
        self._delalloc.discard(inode.ino)
        self.journal.add_ns_op(NsOp(NsOpKind.UNLINK, path, inode.ino))
        self.pagecache.drop_inode(inode.ino)
        self.device.forget_stream(inode.ino)
        if self._observe:
            tracer = self.obs.tracer
            if tracer is not None:
                tracer.drop_inode(inode.ino)
        syscalls = getattr(self, "nob_syscalls", None)
        if syscalls is not None:
            syscalls.on_unlink(inode.ino)
        return at + self.cpu.syscall_ns

    def rename(self, src: str, dst: str, at: int) -> int:
        """Atomically replace ``dst`` with ``src`` (journaled).

        If ``dst`` exists it is implicitly unlinked, as POSIX requires.
        Like ext4's ``auto_da_alloc`` heuristic, a rename writes the
        source's delalloc data back first, so a replace-via-rename never
        leaves a zero-length file after a crash.
        """
        self._tick(at)
        ino = self._namespace.get(src)
        if ino is None:
            raise FileNotFound(src)
        _, at = self.writeback_inode(ino, at)
        displaced = self._namespace.get(dst)
        if displaced is not None and displaced != ino:
            self._inodes[displaced].nlink = 0
            self._delalloc.discard(displaced)
            self.pagecache.drop_inode(displaced)
            syscalls = getattr(self, "nob_syscalls", None)
            if syscalls is not None:
                syscalls.on_unlink(displaced)
        del self._namespace[src]
        self._namespace[dst] = ino
        self.journal.add_ns_op(NsOp(NsOpKind.RENAME, src, ino, dst_path=dst))
        return at + self.cpu.syscall_ns

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def _record_write(self, inode: Inode, nbytes: int, at: int) -> int:
        """Dirty pages, mark delalloc, throttle if over the hard limit."""
        self.pagecache.write(inode.ino, inode.size - nbytes, nbytes)
        self._delalloc.add(inode.ino)
        self._arm_flusher()
        if self.pagecache.dirty_bytes > self._hard_dirty_limit:
            # balance_dirty_pages: the writer blocks until writeback
            # drains the backlog (it becomes device-bound).
            drained = self.writeback_all(at)
            self.throttle_ns += max(drained - at, 0)
            if self._observe:
                self._throttle_counter.inc(max(drained - at, 0))
            return drained
        return at

    def append(self, handle: File, data: bytes, at: int) -> int:
        """Buffered append: page-cache memcpy; allocation is delayed."""
        self._tick(at)
        inode = handle._inode
        inode.data.append(data)
        t = at + self.cpu.memcpy_ns(len(data))
        return self._record_write(inode, len(data), t)

    def append_zeros(self, handle: File, nbytes: int, at: int) -> int:
        """Buffered append of a zero-run (large synthetic writes)."""
        self._tick(at)
        inode = handle._inode
        inode.data.append_zeros(nbytes)
        t = at + self.cpu.memcpy_ns(nbytes)
        return self._record_write(inode, nbytes, t)

    def write_direct(self, handle: File, nbytes: int, at: int, data: bytes = b"") -> int:
        """O_DIRECT-style append: bypasses the cache, blocks on the device.

        Allocation is immediate with direct I/O, so the inode's size
        change joins the running transaction right away.
        """
        self._tick(at)
        inode = handle._inode
        if data:
            if len(data) != nbytes:
                raise ValueError("data length does not match nbytes")
            inode.data.append(data)
        else:
            inode.data.append_zeros(nbytes)
        done = self.device.write(nbytes, at, sequential=True, stream=inode.ino)
        inode.durable_len = inode.size
        self.journal.join(inode.ino, inode.durable_len)
        self.events.run_until(done)
        return done

    # ------------------------------------------------------------------
    # writeback (the flusher daemon and dirty-pressure handling)
    # ------------------------------------------------------------------

    def writeback_inode(
        self, ino: int, at: int, max_bytes: Optional[int] = None
    ) -> "Tuple[int, int]":
        """Write (up to ``max_bytes`` of) one inode's dirty data back.

        This is where delayed allocation resolves: data goes to the
        device first, then the inode (with its new durable prefix) enters
        the running transaction — data=ordered by construction. Returns
        ``(bytes_written, completion_time)``.
        """
        inode = self._inodes.get(ino)
        if inode is None or inode.nlink == 0:
            self._delalloc.discard(ino)
            return 0, at
        delta = inode.dirty_bytes
        if max_bytes is not None:
            delta = min(delta, max_bytes)
        t = at
        if delta > 0:
            t = self.device.write(delta, t, sequential=True, stream=ino)
            inode.durable_len += delta
            if self._observe:
                self._writeback_bytes.inc(delta)
        self.pagecache.clean_inode(ino, inode.durable_len)
        if inode.dirty_bytes == 0:
            self._delalloc.discard(ino)
        if delta > 0:
            self.journal.join(ino, inode.durable_len)
        return delta, t

    def writeback_all(self, at: int) -> int:
        """Write back every delalloc-dirty inode (dirty-pressure path).

        On a multi-channel device each inode's batch is submitted at
        ``at`` and lands on its affinity channel, so independent files
        drain in parallel; the single-channel path chains submissions,
        which on one serial timeline produces the same completion time.
        """
        if self.device.num_channels > 1:
            done = at
            for ino in sorted(self._delalloc):
                _, end = self.writeback_inode(ino, at)
                done = max(done, end)
            return done
        t = at
        for ino in sorted(self._delalloc):
            _, t = self.writeback_inode(ino, t)
        return t

    def _arm_flusher(self, delay: Optional[int] = None) -> None:
        if self._flusher_timer is None and self._delalloc:
            self._flusher_timer = self.events.schedule_after(
                self.writeback_interval_ns if delay is None else delay,
                self._flusher_tick,
            )

    def _flusher_tick(self, when: int) -> None:
        """One paced writeback batch; reschedules itself while dirty.

        At most one ``writeback_chunk_bytes`` batch is in flight at a
        time, and a round never starts before the previous round's
        device completion — the flusher drains at device speed, dirty
        pages accumulate in between, and writers that outrun the device
        eventually hit the hard dirty limit (backpressure).
        """
        self._flusher_timer = None
        if when < self._flusher_busy_until:
            self._arm_flusher(delay=self._flusher_busy_until - when)
            return
        self.flusher_runs += 1
        span = NULL_SPAN
        tracer = None
        if self._observe:
            tracer = self.obs.tracer
            if tracer is not None:
                tracer.push_track("flusher")
            span = self.obs.start_span("fs.writeback", when)
        budget = self.writeback_chunk_bytes
        t = when
        if self.device.num_channels > 1:
            # fan the batch out: every inode's writeback is submitted at
            # `when` and queues on its own affinity channel, so distinct
            # files (a compaction output, the WAL, a fresh L0 table)
            # drain concurrently instead of behind one another
            for ino in sorted(self._delalloc):
                if budget <= 0:
                    break
                written, end = self.writeback_inode(
                    ino, when, max_bytes=budget
                )
                budget -= written
                t = max(t, end)
        else:
            for ino in sorted(self._delalloc):
                if budget <= 0:
                    break
                written, t = self.writeback_inode(ino, t, max_bytes=budget)
                budget -= written
        span.annotate(bytes=self.writeback_chunk_bytes - budget)
        span.end(t)
        if tracer is not None:
            tracer.pop_track()
        self._flusher_busy_until = t
        if self._delalloc:
            self._arm_flusher(delay=max(t - self.clock.now, 1))
        # otherwise re-armed by the next dirtying write

    def _on_dirty_pressure(self) -> None:
        """Background dirty-ratio crossed: wake the flusher now, commit.

        The flusher still drains in paced chunks at device speed — this
        only pulls its next wake-up forward. Writers that outrun the
        device keep dirtying pages until the *hard* limit, where
        ``_record_write`` blocks them (balance_dirty_pages).
        """
        if self._flusher_timer is not None:
            self._flusher_timer.cancel()
            self._flusher_timer = None
        self._arm_flusher(delay=1)
        self.journal.request_commit()

    def read(self, handle: File, offset: int, nbytes: int, at: int) -> Tuple[bytes, int]:
        """Read bytes; page-cache misses cost device reads."""
        self._tick(at)
        inode = handle._inode
        data = inode.data.read(offset, nbytes)
        miss_bytes = self.pagecache.read_misses(inode.ino, offset, len(data))
        t = at + self.cpu.memcpy_ns(len(data))
        if miss_bytes:
            sequential = offset == inode.last_read_end
            t = self.device.read(miss_bytes, t, sequential=sequential)
            self.events.run_until(t)
        inode.last_read_end = offset + len(data)
        return data, t

    def fsync(self, handle: File, at: int, reason: str = "fsync") -> int:
        """Blocking sync: write back *this file's* data, force a commit.

        The cost the paper measures: the file's own dirty pages go to the
        device, then the journal commit (journal blocks + FLUSH barrier)
        makes its inode durable. Unrelated dirty data stays in the cache
        (delayed allocation keeps it out of the transaction).
        """
        self._tick(at)
        inode = handle._inode
        dirty = inode.dirty_bytes
        self.sync_stats.record(dirty, reason)
        t = at + self.cpu.syscall_ns
        _, t = self.writeback_inode(inode.ino, t)
        t = self.journal.wait_for_inode(inode.ino, t)
        if inode.committed_size < inode.durable_len:
            # wait_for_inode committed the txn holding this inode, which
            # recorded its size; for a data-only change there is no txn and
            # the durable prefix already covers everything written back.
            inode.committed_size = inode.durable_len
            inode.ever_committed = True
        self.events.run_until(t)
        if self._observe:
            self._fsync_hist.record(t - at)
        return t

    def snapshot(self) -> Dict[str, object]:
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "files": len(self._namespace),
            "delalloc_inodes": len(self._delalloc),
            "flusher_runs": self.flusher_runs,
            "throttle_ns": self.throttle_ns,
            "crashes": self.crashes,
        }

    # ------------------------------------------------------------------
    # crash
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power failure: volatile state vanishes; journal recovery runs.

        Committed metadata and written-back data survive; everything else
        — page cache, running/in-flight transactions, uncommitted files,
        file tails past their committed size — is lost.
        """
        self.crashes += 1
        self.journal.discard_volatile()
        self.pagecache.drop_all()
        self._delalloc.clear()
        if self._flusher_timer is not None:
            self._flusher_timer.cancel()
            self._flusher_timer = None
        self._namespace = dict(self._durable_namespace)
        survivors: Dict[int, Inode] = {}
        for path, ino in self._namespace.items():
            inode = self._inodes[ino]
            inode.data.truncate(inode.committed_size)
            inode.durable_len = inode.committed_size
            inode.nlink = 1
            inode.last_read_end = -1
            survivors[ino] = inode
        self._inodes = survivors
        syscalls = getattr(self, "nob_syscalls", None)
        if syscalls is not None:
            syscalls.reset()
