"""JBD2-style journaling.

Ext4 delegates crash consistency to JBD2: metadata modified by file
operations joins a *running* transaction; the transaction is committed
either synchronously (an application called fsync) or asynchronously —
every ``commit_interval`` (5 s by default) or when the page cache's dirty
ratio crosses its threshold, whichever comes first (Section 2.2 of the
paper).

Ext4 uses *delayed allocation*: a buffered write only dirties pages; the
inode joins a journal transaction when its data is **written back**
(blocks are allocated then, and ``data=ordered`` is satisfied because the
data reaches the device before the metadata commits). A commit therefore
writes only journal blocks plus a FLUSH — it never has to write file
data, which is why an fsync of one small file stays cheap even while
gigabytes of unrelated dirty data sit in the page cache. Once a commit
completes, both metadata and data of every covered file are
crash-recoverable — the property NobLSM exploits instead of calling
fsync.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.obs.spans import NULL_SPAN
from repro.sim.clock import seconds
from repro.sim.events import EventQueue
from repro.sim.ssd import SSD

JOURNAL_BLOCK = 4096

CommitCallback = Callable[["Transaction", int], None]


class TxnState(enum.Enum):
    RUNNING = "running"
    COMMITTING = "committing"
    COMMITTED = "committed"


class NsOpKind(enum.Enum):
    CREATE = "create"
    UNLINK = "unlink"
    RENAME = "rename"


@dataclass(frozen=True, slots=True)
class NsOp:
    """A journaled namespace operation, applied durably at commit."""

    kind: NsOpKind
    path: str
    ino: int = -1
    dst_path: str = ""


@dataclass(slots=True)
class Transaction:
    """One JBD2 transaction: a set of inodes plus namespace operations."""

    tid: int
    state: TxnState = TxnState.RUNNING
    inodes: Set[int] = field(default_factory=set)
    ns_ops: List[NsOp] = field(default_factory=list)
    commit_sizes: Dict[int, int] = field(default_factory=dict)
    commit_started_at: int = -1
    commit_done_at: int = -1

    @property
    def empty(self) -> bool:
        return not self.inodes and not self.ns_ops


@dataclass(frozen=True)
class JournalConfig:
    """Tunables of the journaling machinery.

    ``commit_interval_ns`` is Ext4's async-commit period (5 s default);
    ``periodic`` disables the timer entirely for ablations.
    """

    commit_interval_ns: int = seconds(5)
    periodic: bool = True
    block_size: int = JOURNAL_BLOCK


class Journal:
    """The JBD2 engine shared by the file system and every application.

    The journal does not know about files; it asks its ``datasource`` (the
    file system) for dirty sizes and tells it when commits become durable.
    The datasource must provide:

    - ``dirty_extent(ino) -> (start, end)``: the not-yet-written-back byte
      range of an inode's data;
    - ``apply_commit(txn, when)``: make the transaction's effects durable.
    """

    def __init__(
        self,
        events: EventQueue,
        device: SSD,
        config: Optional[JournalConfig] = None,
        obs: Optional[MetricRegistry] = None,
    ) -> None:
        self.events = events
        self.clock = events.clock
        self.device = device
        self.config = config if config is not None else JournalConfig()
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._observe = self.obs.enabled
        if self._observe:
            self.obs.register_source("journal", self.snapshot)
        self.datasource = None  # set by Ext4.attach
        self._tids = itertools.count(1)
        self._running: Optional[Transaction] = None
        self._committing: Optional[Transaction] = None
        self._last_commit_done = 0
        self._ino_txn: Dict[int, Transaction] = {}
        self.commits = 0
        self.forced_commits = 0
        self.committed_tids: List[int] = []
        self.on_commit: List[CommitCallback] = []
        self._timer = None
        if self.config.periodic:
            self._arm_timer()

    # ------------------------------------------------------------------
    # transaction membership
    # ------------------------------------------------------------------

    @property
    def running(self) -> Optional[Transaction]:
        return self._running

    @property
    def committing(self) -> Optional[Transaction]:
        return self._committing

    def _ensure_running(self) -> Transaction:
        if self._running is None:
            self._running = Transaction(tid=next(self._tids))
        return self._running

    def join(self, ino: int, durable_size: int = 0) -> Transaction:
        """Add an inode's metadata to the running transaction.

        ``durable_size`` is the inode's written-back data length at join
        time (the size the committed inode will record). With delayed
        allocation this is called at *writeback* time, so data always
        reaches the device before the metadata that describes it.
        """
        txn = self._ensure_running()
        txn.inodes.add(ino)
        sizes = txn.commit_sizes
        previous = sizes.get(ino)
        if previous is None or durable_size > previous:
            sizes[ino] = durable_size
        self._ino_txn[ino] = txn
        return txn

    def add_ns_op(self, op: NsOp) -> Transaction:
        """Journal a namespace operation (create/unlink/rename)."""
        txn = self._ensure_running()
        txn.ns_ops.append(op)
        if op.ino >= 0:
            txn.inodes.add(op.ino)
            self._ino_txn[op.ino] = txn
        return txn

    def txn_of(self, ino: int) -> Optional[Transaction]:
        """The transaction currently holding an inode's dirty metadata."""
        txn = self._ino_txn.get(ino)
        if txn is not None and txn.state is TxnState.COMMITTED:
            return None
        return txn

    # ------------------------------------------------------------------
    # commit machinery
    # ------------------------------------------------------------------

    def _arm_timer(self) -> None:
        self._timer = self.events.schedule_after(
            self.config.commit_interval_ns, self._periodic_tick
        )

    def _periodic_tick(self, when: int) -> None:
        if self._running is not None and not self._running.empty:
            self.commit_async(when)
        self._arm_timer()

    def request_commit(self) -> None:
        """Dirty-ratio hook from the page cache: commit soon (async)."""
        if self._running is not None and not self._running.empty:
            self.commit_async(self.clock.now)

    def _journal_write_bytes(self, txn: Transaction) -> int:
        # descriptor + commit block, plus the modified metadata blocks:
        # inode-table blocks hold ~16 inodes each, directory blocks a
        # few dozen entries.
        metadata_blocks = (len(txn.inodes) + 15) // 16
        dir_blocks = (len(txn.ns_ops) + 31) // 32
        return (2 + metadata_blocks + dir_blocks) * self.config.block_size

    def _perform_commit(
        self, txn: Transaction, at: int, forced: bool = False
    ) -> int:
        """Run the commit for ``txn``; returns completion time.

        Member inodes' data is already on the device (delayed allocation
        joins them at writeback), so a commit is journal blocks + FLUSH.
        """
        if self.datasource is None:
            raise RuntimeError("journal has no attached file system")
        txn.state = TxnState.COMMITTING
        txn.commit_started_at = at
        start = max(at, self._last_commit_done)
        journal_bytes = self._journal_write_bytes(txn)
        span = NULL_SPAN
        tracer = None
        if self._observe:
            tracer = self.obs.tracer
            if tracer is not None:
                tracer.push_track("journal")
            span = self.obs.start_span(
                "journal.commit",
                at,
                tid=txn.tid,
                inodes=len(txn.inodes),
                ns_ops=len(txn.ns_ops),
                journal_bytes=journal_bytes,
                forced=forced,
            )
        # the journal is one physically contiguous region: all commit
        # blocks share one stream so they stay ordered on one channel;
        # the FLUSH that follows is a cross-channel barrier regardless
        t = self.device.write(
            journal_bytes, start, sequential=True, stream="jbd2"
        )
        t = self.device.flush(t)
        txn.commit_done_at = t
        self._last_commit_done = t
        self.commits += 1
        span.end(t)
        if tracer is not None:
            tracer.pop_track()
            tracer.note_commit(txn.inodes, span)
        return t

    def _finalize(self, txn: Transaction, when: int) -> None:
        if txn.state is TxnState.COMMITTED:
            return
        txn.state = TxnState.COMMITTED
        self.committed_tids.append(txn.tid)
        if self._committing is txn:
            self._committing = None
        self.datasource.apply_commit(txn, when)
        for callback in self.on_commit:
            callback(txn, when)

    def commit_async(self, at: int) -> Optional[Transaction]:
        """Close the running transaction and commit it off the critical path.

        The device time is consumed immediately on the shared timeline
        (delaying later I/O), but no caller blocks; durability is applied
        by an event at the commit's completion time.
        """
        txn = self._running
        if txn is None or txn.empty:
            return None
        self._running = None
        done = self._perform_commit(txn, at)
        self._committing = txn
        self.events.schedule(done, lambda when, t=txn: self._finalize(t, when))
        return txn

    def commit_sync(self, at: int) -> int:
        """Force-commit the running transaction; caller blocks to completion."""
        self.forced_commits += 1
        txn = self._running
        if txn is None or txn.empty:
            # Nothing to commit; wait out any in-flight commit.
            if self._committing is not None:
                return max(at, self._committing.commit_done_at)
            return at
        self._running = None
        older = self._committing
        done = self._perform_commit(txn, at, forced=True)
        if older is not None:
            # Apply the older in-flight commit first so durable state is
            # always applied in tid order (its pending event becomes a no-op).
            self._finalize(older, older.commit_done_at)
        self._finalize(txn, done)
        return done

    def wait_for_inode(self, ino: int, at: int) -> int:
        """fsync path: make the inode's transaction durable, return when.

        - inode in the running transaction: force a synchronous commit;
        - inode in the committing transaction: wait for its completion;
        - otherwise: already durable, no journal work.
        """
        txn = self._ino_txn.get(ino)
        if txn is None or txn.state is TxnState.COMMITTED:
            return at
        if txn.state is TxnState.RUNNING:
            return self.commit_sync(at)
        return max(at, txn.commit_done_at)

    def snapshot(self) -> Dict[str, object]:
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "commits": self.commits,
            "forced_commits": self.forced_commits,
            "committed_tids": len(self.committed_tids),
            "running": self._running is not None and not self._running.empty,
            "committing": self._committing is not None,
        }

    # ------------------------------------------------------------------
    # crash support
    # ------------------------------------------------------------------

    def discard_volatile(self) -> None:
        """Power failure: running and in-flight transactions are lost."""
        self._running = None
        self._committing = None
        self._ino_txn.clear()
        if self._timer is not None:
            self._timer.cancel()
        if self.config.periodic:
            self._arm_timer()
