"""Power-failure injection.

The paper's consistency test (Section 5.2) pulls the plug with
``halt -f -p -n`` while fillrandom runs. The equivalent here is
:func:`crash_and_recover`: drop everything volatile, run journal recovery
(already-committed transactions were applied when they committed, so
recovery is re-establishing the durable view), and report what survived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.fs.ext4 import Ext4


@dataclass
class CrashReport:
    """What a power failure left behind."""

    surviving_paths: List[str]
    lost_paths: List[str]
    truncated_paths: Dict[str, "tuple[int, int]"]  # path -> (live, durable)


def crash_and_recover(fs: Ext4) -> CrashReport:
    """Power off the machine, then mount and recover the file system.

    Returns a :class:`CrashReport` describing which paths vanished (never
    committed), which were truncated (volatile tail lost), and which
    survived intact.
    """
    before = {
        path: fs.stat_size(path) for path in fs.list_dir("")
    }
    durable_before = {
        path: fs._inodes[ino].committed_size
        for path, ino in fs._namespace.items()
    }
    fs.crash()
    after = set(fs.list_dir(""))
    surviving: List[str] = []
    lost: List[str] = []
    truncated: Dict[str, "tuple[int, int]"] = {}
    for path, live_size in before.items():
        if path not in after:
            lost.append(path)
        elif durable_before.get(path, 0) < live_size:
            truncated[path] = (live_size, durable_before.get(path, 0))
            surviving.append(path)
        else:
            surviving.append(path)
    for path in sorted(after - set(before)):
        # A committed file whose unlink had not committed reappears.
        surviving.append(path)
    return CrashReport(
        surviving_paths=sorted(surviving),
        lost_paths=sorted(lost),
        truncated_paths=truncated,
    )
