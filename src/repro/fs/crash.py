"""Power-failure injection.

The paper's consistency test (Section 5.2) pulls the plug with
``halt -f -p -n`` while fillrandom runs. The equivalent here is
:func:`crash_and_recover`: drop everything volatile, run journal recovery
(already-committed transactions were applied when they committed, so
recovery is re-establishing the durable view), and report what survived.

The report is built entirely from :class:`~repro.fs.ext4.Ext4`'s public
durable-view API (:meth:`~repro.fs.ext4.Ext4.durable_namespace` /
:meth:`~repro.fs.ext4.Ext4.durable_stat`), so it states *before* the
power is cut exactly what the machine will wake up with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.fs.ext4 import Ext4


@dataclass
class CrashReport:
    """What a power failure left behind."""

    surviving_paths: List[str]
    lost_paths: List[str]
    truncated_paths: Dict[str, "tuple[int, int]"]  # path -> (live, durable)
    #: committed files whose unlink had not committed: path -> durable size
    reappeared_paths: Dict[str, int] = field(default_factory=dict)


def predict_crash_report(fs: Ext4) -> CrashReport:
    """What a power failure *right now* would leave behind (no crash).

    Compares the live namespace against the durable view: paths absent
    from the durable namespace are lost; paths whose durable size trails
    their live size are truncated; durable paths no longer visible in the
    live namespace (their unlink/rename-over has not committed) reappear.
    """
    durable = fs.durable_namespace()
    live_paths = fs.list_dir("")
    surviving: List[str] = []
    lost: List[str] = []
    truncated: Dict[str, "tuple[int, int]"] = {}
    reappeared: Dict[str, int] = {}
    for path in live_paths:
        live_size = fs.stat_size(path)
        durable_size = fs.durable_stat(path)
        if durable_size is None:
            lost.append(path)
            continue
        if durable_size < live_size:
            truncated[path] = (live_size, durable_size)
        surviving.append(path)
    live_set = set(live_paths)
    for path in sorted(durable):
        if path not in live_set:
            # A committed file whose unlink had not committed reappears,
            # truncated to its own committed size.
            surviving.append(path)
            reappeared[path] = fs.durable_stat(path) or 0
    return CrashReport(
        surviving_paths=sorted(surviving),
        lost_paths=sorted(lost),
        truncated_paths=truncated,
        reappeared_paths=reappeared,
    )


def crash_and_recover(fs: Ext4) -> CrashReport:
    """Power off the machine, then mount and recover the file system.

    Returns a :class:`CrashReport` describing which paths vanished (never
    committed), which were truncated (volatile tail lost), which survived
    intact, and which reappeared (their unlink never committed).
    """
    report = predict_crash_report(fs)
    fs.crash()
    return report
