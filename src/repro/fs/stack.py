"""One-call construction of the whole simulated storage stack."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fs.ext4 import Ext4
from repro.fs.jbd2 import Journal, JournalConfig
from repro.fs.pagecache import PageCache
from repro.fs.syscalls import NobSyscalls
from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.latency import (
    CpuProfile,
    DEFAULT_CPU,
    DeviceProfile,
    GIB,
    PM883,
)
from repro.sim.ssd import SSD
from repro.sim.stats import SyncStats


@dataclass
class StackConfig:
    """Knobs for building a :class:`StorageStack`.

    ``obs`` injects a :class:`~repro.obs.metrics.MetricRegistry` into
    every layer of the stack; ``None`` (the default) means the shared
    no-op registry — recording disabled, zero cost.

    ``num_channels`` (when set) overrides the device profile's channel
    count — the convenient way to sweep device parallelism without
    rebuilding profiles; ``None`` keeps whatever the profile says.
    """

    device: DeviceProfile = PM883
    cpu: CpuProfile = DEFAULT_CPU
    pagecache_bytes: int = 4 * GIB
    dirty_ratio: float = 0.10
    hard_dirty_ratio: float = 0.25
    writeback_interval_ns: int = Ext4.DEFAULT_WRITEBACK_INTERVAL
    writeback_chunk_bytes: int = Ext4.DEFAULT_WRITEBACK_CHUNK
    journal: JournalConfig = field(default_factory=JournalConfig)
    obs: Optional[MetricRegistry] = None
    num_channels: Optional[int] = None


class StorageStack:
    """Clock + events + SSD + page cache + journal + Ext4 + syscalls.

    The canonical substrate every store and benchmark runs on. One stack
    models one machine: a single SSD, a single file system, one journal —
    and one metric registry (``stack.obs``) the whole stack reports into.
    """

    def __init__(self, config: Optional[StackConfig] = None) -> None:
        self.config = config if config is not None else StackConfig()
        self.obs = (
            self.config.obs if self.config.obs is not None else NULL_REGISTRY
        )
        self.clock = VirtualClock()
        self.events = EventQueue(self.clock)
        device = self.config.device
        if self.config.num_channels is not None:
            device = device.with_channels(self.config.num_channels)
        self.ssd = SSD(self.clock, device, obs=self.obs)
        self.sync_stats = SyncStats()
        self.pagecache = PageCache(
            self.config.pagecache_bytes, self.config.dirty_ratio
        )
        self.journal = Journal(
            self.events, self.ssd, self.config.journal, obs=self.obs
        )
        self.fs = Ext4(
            self.events,
            self.ssd,
            self.journal,
            self.pagecache,
            cpu=self.config.cpu,
            sync_stats=self.sync_stats,
            writeback_interval_ns=self.config.writeback_interval_ns,
            writeback_chunk_bytes=self.config.writeback_chunk_bytes,
            hard_dirty_ratio=self.config.hard_dirty_ratio,
            obs=self.obs,
        )
        self.syscalls = NobSyscalls(self.fs)

    @property
    def now(self) -> int:
        return self.clock.now

    def settle(self, max_steps: int = 10_000) -> int:
        """Run background work until the stack is quiescent.

        Quiescent means: no dirty pages, no running or in-flight journal
        transaction. The journal's periodic timer re-arms forever, so this
        steps event-by-event rather than draining the queue.
        """
        for _ in range(max_steps):
            quiescent = (
                self.pagecache.dirty_bytes == 0
                and (self.journal.running is None or self.journal.running.empty)
                and self.journal.committing is None
            )
            if quiescent:
                break
            next_time = self.events.next_event_time()
            if next_time is None:
                break
            self.events.run_until(next_time)
        return self.clock.now

    def crash(self) -> None:
        """Power-fail the machine (see :mod:`repro.fs.crash`)."""
        self.fs.crash()
