"""Simulated Ext4/JBD2 storage stack.

The file system reproduces the pieces of Linux + Ext4 that NobLSM's design
depends on:

- a DRAM page cache with dirty-page accounting and a dirty-ratio commit
  trigger (:mod:`repro.fs.pagecache`);
- JBD2-style journaling with a running transaction, periodic asynchronous
  commits and ``data=ordered`` writeback-before-commit
  (:mod:`repro.fs.jbd2`);
- an append-only file namespace with fsync/fdatasync, rename, unlink and
  exact crash semantics (:mod:`repro.fs.ext4`);
- the paper's two kernel tables and two syscalls (:mod:`repro.fs.syscalls`);
- power-failure injection and recovery (:mod:`repro.fs.crash`).

Every blocking call takes an explicit submission time ``at`` and returns
its completion time, so simulated threads with private clocks can share
one file system.
"""

from repro.fs.ext4 import Ext4, File, FsError, FileNotFound, NotAppendOnly
from repro.fs.jbd2 import Journal, JournalConfig, Transaction, TxnState
from repro.fs.pagecache import PageCache
from repro.fs.syscalls import NobSyscalls
from repro.fs.crash import crash_and_recover
from repro.fs.stack import StackConfig, StorageStack

__all__ = [
    "Ext4",
    "File",
    "FsError",
    "FileNotFound",
    "NotAppendOnly",
    "Journal",
    "JournalConfig",
    "Transaction",
    "TxnState",
    "PageCache",
    "NobSyscalls",
    "crash_and_recover",
    "StackConfig",
    "StorageStack",
]
