"""The simulated solid-state drive.

A single shared device services every read, write and FLUSH in the
simulation. Each *channel* keeps its own busy timeline: an I/O submitted
at virtual time ``t`` starts at ``max(t, channel_busy)`` and occupies its
channel for its service time. The default profile has one channel — the
single serial timeline that makes syncs expensive in exactly the way the
paper describes (a FLUSH barrier must wait for all queued writes, then
stalls everything submitted after it) and reproduces the paper's SATA
PM883 setup bit-for-bit.

With ``DeviceProfile.num_channels > 1`` the device becomes an NVMe-style
multi-queue model:

- unhinted I/O goes to the *least-loaded* channel (earliest free,
  lowest index on ties — deterministic);
- a caller may pass a ``stream`` key; the first I/O of a stream is
  placed by the least-loaded rule and every later I/O of the same stream
  sticks to that channel, so one file's sequential writes stay ordered
  (sequential-stream affinity);
- FLUSH is a *cross-channel barrier*: it starts only after every channel
  drains and blocks all of them until it completes, matching how a cache
  flush drains the whole device, not one queue.

Observability: the device reports through an optional
:class:`~repro.obs.metrics.MetricRegistry` — per-op latency histograms
(``device.write_ns`` / ``device.read_ns`` / ``device.flush_ns``, each
measured submission→completion so queueing is included) and a
``device.queue_ns`` counter of time spent waiting behind earlier I/O.
Multi-channel devices additionally expose per-channel queue histograms
(``device.ch<i>.queue_ns``); per-channel busy time appears as
``channel_busy_ns`` in the device stats snapshot. Independent of the registry, *listeners* may
subscribe to every operation (``add_io_listener``); this is the
mechanism behind :class:`~repro.sim.trace.IOTrace` and
``MetricRegistry.trace_io``, replacing the old method monkey-patching.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.sim.clock import VirtualClock
from repro.sim.latency import DeviceProfile, PM883
from repro.sim.stats import DeviceStats

#: (kind, nbytes, submitted_at, completed_at, sequential)
IOListener = Callable[[str, int, int, int, bool], None]

#: a stream-affinity key — any hashable value (inode number, "jbd2", ...)
StreamKey = object


class SSD:
    """A virtual-time block device with per-channel busy timelines.

    All methods take the submission time ``at`` and return the completion
    time. Callers that block on the I/O (direct writes, flushes) advance
    their thread clock to the returned value; callers that do not block
    (page-cache writeback) simply let the device timeline absorb the work,
    delaying whoever touches the same channel next.
    """

    def __init__(
        self,
        clock: VirtualClock,
        profile: DeviceProfile = PM883,
        stats: Optional[DeviceStats] = None,
        obs: Optional[MetricRegistry] = None,
    ) -> None:
        self.clock = clock
        self.profile = profile
        self.stats = stats if stats is not None else DeviceStats()
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._channels: List[int] = [0] * profile.num_channels
        if profile.num_channels > 1:
            self.stats.channel_busy_ns = [0] * profile.num_channels
        self._streams: Dict[StreamKey, int] = {}
        self._listeners: List[IOListener] = []
        self._observe = self.obs.enabled
        if self._observe:
            self.obs.register_source("device", self.stats.snapshot)
            self._write_hist = self.obs.histogram("device.write_ns")
            self._read_hist = self.obs.histogram("device.read_ns")
            self._flush_hist = self.obs.histogram("device.flush_ns")
            self._queue_ns = self.obs.counter("device.queue_ns")
            if profile.num_channels > 1:
                self._channel_queue = [
                    self.obs.histogram(f"device.ch{i}.queue_ns")
                    for i in range(profile.num_channels)
                ]

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    @property
    def busy_until(self) -> int:
        """Virtual time at which all submitted work completes."""
        return max(self._channels)

    def channel_busy_until(self, channel: int) -> int:
        """Virtual time at which one channel's queued work completes."""
        return self._channels[channel]

    def idle_at(self, at: int) -> bool:
        """True if the device has no queued work at time ``at``."""
        return all(busy <= at for busy in self._channels)

    # ------------------------------------------------------------------
    # I/O listeners (tracing)
    # ------------------------------------------------------------------

    def add_io_listener(self, listener: IOListener) -> None:
        """Subscribe to every device operation (used by I/O tracing)."""
        self._listeners.append(listener)

    def remove_io_listener(self, listener: IOListener) -> None:
        self._listeners.remove(listener)

    def _notify(
        self, kind: str, nbytes: int, at: int, done: int, sequential: bool
    ) -> None:
        for listener in self._listeners:
            listener(kind, nbytes, int(at), done, sequential)

    # ------------------------------------------------------------------
    # channel arbitration
    # ------------------------------------------------------------------

    def _pick_channel(self, stream: Optional[StreamKey]) -> int:
        """Channel for the next I/O: stream-sticky, else least-loaded."""
        if len(self._channels) == 1:
            return 0
        if stream is not None:
            channel = self._streams.get(stream)
            if channel is not None:
                return channel
        channel = min(
            range(len(self._channels)), key=self._channels.__getitem__
        )
        if stream is not None:
            self._streams[stream] = channel
        return channel

    def forget_stream(self, stream: StreamKey) -> None:
        """Drop a stream's channel affinity (e.g. the file was deleted)."""
        self._streams.pop(stream, None)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _service(self, at: int, duration: int, channel: int) -> int:
        start = max(int(at), self._channels[channel])
        completion = start + duration
        self._channels[channel] = completion
        self.stats.busy_ns += duration
        if self.stats.channel_busy_ns:
            self.stats.channel_busy_ns[channel] += duration
        return completion

    def write(
        self,
        nbytes: int,
        at: int,
        sequential: bool = True,
        stream: Optional[StreamKey] = None,
    ) -> int:
        """Submit a write; returns its completion time."""
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        if nbytes == 0:
            done = max(int(at), self.busy_until)
        else:
            channel = self._pick_channel(stream)
            self.stats.bytes_written += nbytes
            self.stats.write_ios += 1
            if self._observe:
                queued = max(self._channels[channel] - int(at), 0)
                self._queue_ns.inc(queued)
                if len(self._channels) > 1:
                    self._channel_queue[channel].record(queued)
            duration = self.profile.write_ns(nbytes, sequential)
            done = self._service(at, duration, channel)
            if self._observe:
                self._write_hist.record(done - int(at))
                tracer = self.obs.tracer
                if tracer is not None:
                    tracer.io_slice(
                        "write", channel, done - duration, done, nbytes, stream
                    )
        if self._listeners:
            self._notify("write", nbytes, at, done, sequential)
        return done

    def read(
        self,
        nbytes: int,
        at: int,
        sequential: bool = True,
        stream: Optional[StreamKey] = None,
    ) -> int:
        """Submit a read; returns its completion time."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        if nbytes == 0:
            done = max(int(at), self.busy_until)
        else:
            channel = self._pick_channel(stream)
            self.stats.bytes_read += nbytes
            self.stats.read_ios += 1
            if self._observe:
                queued = max(self._channels[channel] - int(at), 0)
                self._queue_ns.inc(queued)
                if len(self._channels) > 1:
                    self._channel_queue[channel].record(queued)
            duration = self.profile.read_ns(nbytes, sequential)
            done = self._service(at, duration, channel)
            if self._observe:
                self._read_hist.record(done - int(at))
                tracer = self.obs.tracer
                if tracer is not None:
                    tracer.io_slice(
                        "read", channel, done - duration, done, nbytes, stream
                    )
        if self._listeners:
            self._notify("read", nbytes, at, done, sequential)
        return done

    def flush(self, at: int) -> int:
        """Issue a FLUSH barrier.

        The barrier drains *every* channel (starts after the whole
        device's ``busy_until``), costs ``flush_ns``, and leaves all
        channels unavailable for a further ``barrier_extra_ns`` —
        modelling the ordering stall that blocks subsequent I/O
        (Section 2.2 of the paper). On a multi-queue device this is the
        cross-channel synchronisation point: no per-channel parallelism
        survives a cache flush.
        """
        self.stats.flushes += 1
        if self._observe:
            self._queue_ns.inc(max(self.busy_until - int(at), 0))
        duration = self.profile.flush_ns + self.profile.barrier_extra_ns
        start = max(int(at), self.busy_until)
        completion = start + duration
        for channel in range(len(self._channels)):
            self._channels[channel] = completion
            if self.stats.channel_busy_ns:
                self.stats.channel_busy_ns[channel] += duration
        self.stats.busy_ns += duration
        if self._observe:
            self._flush_hist.record(completion - int(at))
            tracer = self.obs.tracer
            if tracer is not None:
                tracer.io_slice("flush", -1, start, completion, 0, None)
        if self._listeners:
            self._notify("flush", 0, at, completion, True)
        return completion

    def reset(self) -> None:
        """Forget queued work and zero the statistics (new experiment)."""
        self._channels = [0] * len(self._channels)
        self._streams.clear()
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"SSD(profile={self.profile.name}, "
            f"channels={len(self._channels)}, busy_until={self.busy_until}, "
            f"written={self.stats.bytes_written}B)"
        )
