"""The simulated solid-state drive.

A single shared device services every read, write and FLUSH in the
simulation. It keeps one *busy timeline*: an I/O submitted at virtual time
``t`` starts at ``max(t, busy_until)`` and occupies the device for its
service time. This is what makes syncs expensive in exactly the way the
paper describes — a FLUSH barrier must wait for all queued writes, then
stalls everything submitted after it.

Observability: the device reports through an optional
:class:`~repro.obs.metrics.MetricRegistry` — per-op latency histograms
(``device.write_ns`` / ``device.read_ns`` / ``device.flush_ns``, each
measured submission→completion so queueing is included) and a
``device.queue_ns`` counter of time spent waiting behind earlier I/O.
Independent of the registry, *listeners* may subscribe to every
operation (``add_io_listener``); this is the mechanism behind
:class:`~repro.sim.trace.IOTrace` and ``MetricRegistry.trace_io``,
replacing the old method monkey-patching.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.sim.clock import VirtualClock
from repro.sim.latency import DeviceProfile, PM883
from repro.sim.stats import DeviceStats

#: (kind, nbytes, submitted_at, completed_at, sequential)
IOListener = Callable[[str, int, int, int, bool], None]


class SSD:
    """A virtual-time block device with a shared busy timeline.

    All methods take the submission time ``at`` and return the completion
    time. Callers that block on the I/O (direct writes, flushes) advance
    their thread clock to the returned value; callers that do not block
    (page-cache writeback) simply let the device timeline absorb the work,
    delaying whoever touches the device next.
    """

    def __init__(
        self,
        clock: VirtualClock,
        profile: DeviceProfile = PM883,
        stats: Optional[DeviceStats] = None,
        obs: Optional[MetricRegistry] = None,
    ) -> None:
        self.clock = clock
        self.profile = profile
        self.stats = stats if stats is not None else DeviceStats()
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._busy_until = 0
        self._listeners: List[IOListener] = []
        self._observe = self.obs.enabled
        if self._observe:
            self.obs.register_source("device", self.stats.snapshot)
            self._write_hist = self.obs.histogram("device.write_ns")
            self._read_hist = self.obs.histogram("device.read_ns")
            self._flush_hist = self.obs.histogram("device.flush_ns")
            self._queue_ns = self.obs.counter("device.queue_ns")

    @property
    def busy_until(self) -> int:
        """Virtual time at which all submitted work completes."""
        return self._busy_until

    def idle_at(self, at: int) -> bool:
        """True if the device has no queued work at time ``at``."""
        return self._busy_until <= at

    # ------------------------------------------------------------------
    # I/O listeners (tracing)
    # ------------------------------------------------------------------

    def add_io_listener(self, listener: IOListener) -> None:
        """Subscribe to every device operation (used by I/O tracing)."""
        self._listeners.append(listener)

    def remove_io_listener(self, listener: IOListener) -> None:
        self._listeners.remove(listener)

    def _notify(
        self, kind: str, nbytes: int, at: int, done: int, sequential: bool
    ) -> None:
        for listener in self._listeners:
            listener(kind, nbytes, int(at), done, sequential)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _service(self, at: int, duration: int) -> int:
        start = max(int(at), self._busy_until)
        completion = start + duration
        self._busy_until = completion
        self.stats.busy_ns += duration
        return completion

    def write(self, nbytes: int, at: int, sequential: bool = True) -> int:
        """Submit a write; returns its completion time."""
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        if nbytes == 0:
            done = max(int(at), self._busy_until)
        else:
            self.stats.bytes_written += nbytes
            self.stats.write_ios += 1
            if self._observe:
                self._queue_ns.inc(max(self._busy_until - int(at), 0))
            done = self._service(at, self.profile.write_ns(nbytes, sequential))
            if self._observe:
                self._write_hist.record(done - int(at))
        if self._listeners:
            self._notify("write", nbytes, at, done, sequential)
        return done

    def read(self, nbytes: int, at: int, sequential: bool = True) -> int:
        """Submit a read; returns its completion time."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        if nbytes == 0:
            done = max(int(at), self._busy_until)
        else:
            self.stats.bytes_read += nbytes
            self.stats.read_ios += 1
            if self._observe:
                self._queue_ns.inc(max(self._busy_until - int(at), 0))
            done = self._service(at, self.profile.read_ns(nbytes, sequential))
            if self._observe:
                self._read_hist.record(done - int(at))
        if self._listeners:
            self._notify("read", nbytes, at, done, sequential)
        return done

    def flush(self, at: int) -> int:
        """Issue a FLUSH barrier.

        The barrier drains the queue (starts after ``busy_until``), costs
        ``flush_ns``, and leaves the device unavailable for a further
        ``barrier_extra_ns`` — modelling the ordering stall that blocks
        subsequent I/O (Section 2.2 of the paper).
        """
        self.stats.flushes += 1
        if self._observe:
            self._queue_ns.inc(max(self._busy_until - int(at), 0))
        completion = self._service(
            at, self.profile.flush_ns + self.profile.barrier_extra_ns
        )
        if self._observe:
            self._flush_hist.record(completion - int(at))
        if self._listeners:
            self._notify("flush", 0, at, completion, True)
        return completion

    def reset(self) -> None:
        """Forget queued work and zero the statistics (new experiment)."""
        self._busy_until = 0
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"SSD(profile={self.profile.name}, busy_until={self._busy_until}, "
            f"written={self.stats.bytes_written}B)"
        )
