"""The simulated solid-state drive.

A single shared device services every read, write and FLUSH in the
simulation. It keeps one *busy timeline*: an I/O submitted at virtual time
``t`` starts at ``max(t, busy_until)`` and occupies the device for its
service time. This is what makes syncs expensive in exactly the way the
paper describes — a FLUSH barrier must wait for all queued writes, then
stalls everything submitted after it.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import VirtualClock
from repro.sim.latency import DeviceProfile, PM883
from repro.sim.stats import DeviceStats


class SSD:
    """A virtual-time block device with a shared busy timeline.

    All methods take the submission time ``at`` and return the completion
    time. Callers that block on the I/O (direct writes, flushes) advance
    their thread clock to the returned value; callers that do not block
    (page-cache writeback) simply let the device timeline absorb the work,
    delaying whoever touches the device next.
    """

    def __init__(
        self,
        clock: VirtualClock,
        profile: DeviceProfile = PM883,
        stats: Optional[DeviceStats] = None,
    ) -> None:
        self.clock = clock
        self.profile = profile
        self.stats = stats if stats is not None else DeviceStats()
        self._busy_until = 0

    @property
    def busy_until(self) -> int:
        """Virtual time at which all submitted work completes."""
        return self._busy_until

    def idle_at(self, at: int) -> bool:
        """True if the device has no queued work at time ``at``."""
        return self._busy_until <= at

    def _service(self, at: int, duration: int) -> int:
        start = max(int(at), self._busy_until)
        completion = start + duration
        self._busy_until = completion
        self.stats.busy_ns += duration
        return completion

    def write(self, nbytes: int, at: int, sequential: bool = True) -> int:
        """Submit a write; returns its completion time."""
        if nbytes < 0:
            raise ValueError(f"negative write size {nbytes}")
        if nbytes == 0:
            return max(int(at), self._busy_until)
        self.stats.bytes_written += nbytes
        self.stats.write_ios += 1
        return self._service(at, self.profile.write_ns(nbytes, sequential))

    def read(self, nbytes: int, at: int, sequential: bool = True) -> int:
        """Submit a read; returns its completion time."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes}")
        if nbytes == 0:
            return max(int(at), self._busy_until)
        self.stats.bytes_read += nbytes
        self.stats.read_ios += 1
        return self._service(at, self.profile.read_ns(nbytes, sequential))

    def flush(self, at: int) -> int:
        """Issue a FLUSH barrier.

        The barrier drains the queue (starts after ``busy_until``), costs
        ``flush_ns``, and leaves the device unavailable for a further
        ``barrier_extra_ns`` — modelling the ordering stall that blocks
        subsequent I/O (Section 2.2 of the paper).
        """
        self.stats.flushes += 1
        completion = self._service(
            at, self.profile.flush_ns + self.profile.barrier_extra_ns
        )
        return completion

    def reset(self) -> None:
        """Forget queued work and zero the statistics (new experiment)."""
        self._busy_until = 0
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"SSD(profile={self.profile.name}, busy_until={self._busy_until}, "
            f"written={self.stats.bytes_written}B)"
        )
