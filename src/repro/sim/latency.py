"""Calibrated device and CPU cost profiles.

The default :data:`PM883` profile is anchored to the paper's own
measurements (Section 3, Figure 2a) on a 960 GB Samsung PM883 SATA SSD:

- Writing 4 GB in 2 MB files takes 0.83 s with plain buffered (Async)
  writes — a page-cache memcpy rate of roughly 5 GB/s.
- The same data takes 8.18 s via direct I/O — about 500 MB/s of device
  sequential-write bandwidth.
- Adding an fsync per file costs a further 1.88 s over 2048 files —
  roughly 0.9 ms of FLUSH-barrier latency per sync.

Those three anchors give the 13.0x Async-to-Sync gap the paper reports and
are all the device model needs; everything else (who wins, by what factor)
emerges from the systems' sync schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.clock import micros, millis

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True, slots=True)
class DeviceProfile:
    """Bandwidth/latency parameters of a simulated block device.

    Bandwidths are in bytes per virtual second; fixed costs in virtual
    nanoseconds. ``flush_ns`` is the cost of a FLUSH (cache barrier)
    command; ``barrier_extra_ns`` models the ordering stall a sync imposes
    on the request queue beyond the flush itself.

    ``num_channels`` is the device's internal parallelism: an NVMe-style
    drive exposes several independent queues/channels, each its own busy
    timeline (see :class:`~repro.sim.ssd.SSD`). The default of 1 keeps
    the single serial timeline of the paper's SATA PM883 — every seed
    result is produced at ``num_channels=1``.
    """

    name: str
    seq_write_bw: float
    rand_write_bw: float
    seq_read_bw: float
    rand_read_bw: float
    io_submit_ns: int
    flush_ns: int
    barrier_extra_ns: int
    num_channels: int = 1

    def write_ns(self, nbytes: int, sequential: bool = True) -> int:
        """Device service time for a write of ``nbytes``."""
        bw = self.seq_write_bw if sequential else self.rand_write_bw
        return self.io_submit_ns + int(nbytes * 1e9 / bw)

    def read_ns(self, nbytes: int, sequential: bool = True) -> int:
        """Device service time for a read of ``nbytes``."""
        bw = self.seq_read_bw if sequential else self.rand_read_bw
        return self.io_submit_ns + int(nbytes * 1e9 / bw)

    def time_compressed(self, factor: float) -> "DeviceProfile":
        """Shrink the *fixed* per-IO/flush costs by ``factor``.

        A scaled-down experiment runs 1/factor of the paper's operations
        over 1/factor of the data; compressing fixed costs by the same
        factor keeps every component's share of the total time intact
        (transfer times scale automatically with the byte volume).
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return replace(
            self,
            name=f"{self.name}-tc{factor:g}",
            io_submit_ns=max(int(self.io_submit_ns / factor), 1),
            flush_ns=max(int(self.flush_ns / factor), 1),
            barrier_extra_ns=max(int(self.barrier_extra_ns / factor), 1),
        )

    def with_channels(self, num_channels: int) -> "DeviceProfile":
        """A copy of this profile with ``num_channels`` I/O channels.

        Per-channel bandwidth is unchanged: more channels add capacity
        for *independent* streams, they do not speed up one stream —
        matching how NVMe queue pairs behave.
        """
        if num_channels < 1:
            raise ValueError(
                f"need at least one channel, got {num_channels}"
            )
        if num_channels == self.num_channels:
            return self
        return replace(
            self,
            name=f"{self.name}-q{num_channels}",
            num_channels=num_channels,
        )

    def describe(self) -> dict:
        """JSON-safe summary for trace metadata / bench provenance."""
        return {
            "name": self.name,
            "num_channels": self.num_channels,
            "seq_write_bw": self.seq_write_bw,
            "rand_write_bw": self.rand_write_bw,
            "seq_read_bw": self.seq_read_bw,
            "rand_read_bw": self.rand_read_bw,
            "io_submit_ns": self.io_submit_ns,
            "flush_ns": self.flush_ns,
            "barrier_extra_ns": self.barrier_extra_ns,
        }

    def scaled(self, factor: float) -> "DeviceProfile":
        """A uniformly slower (>1) or faster (<1) copy of this profile."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            name=f"{self.name}-x{factor:g}",
            seq_write_bw=self.seq_write_bw / factor,
            rand_write_bw=self.rand_write_bw / factor,
            seq_read_bw=self.seq_read_bw / factor,
            rand_read_bw=self.rand_read_bw / factor,
            io_submit_ns=int(self.io_submit_ns * factor),
            flush_ns=int(self.flush_ns * factor),
            barrier_extra_ns=int(self.barrier_extra_ns * factor),
        )


#: Samsung PM883 960 GB (SATA), anchored to the paper's Figure 2a.
PM883 = DeviceProfile(
    name="PM883",
    seq_write_bw=500.0 * MIB,
    rand_write_bw=380.0 * MIB,
    seq_read_bw=540.0 * MIB,
    rand_read_bw=320.0 * MIB,
    io_submit_ns=micros(25),
    flush_ns=micros(900),
    barrier_extra_ns=micros(80),
)

#: A deliberately slow profile with expensive flushes, used by ablation
#: benches to exaggerate sync costs (HDD-like barrier behaviour).
SLOW_HDD_LIKE = DeviceProfile(
    name="slow-hdd-like",
    seq_write_bw=120.0 * MIB,
    rand_write_bw=2.0 * MIB,
    seq_read_bw=150.0 * MIB,
    rand_read_bw=2.0 * MIB,
    io_submit_ns=micros(100),
    flush_ns=millis(8),
    barrier_extra_ns=millis(2),
)


@dataclass(frozen=True, slots=True)
class CpuProfile:
    """Per-operation CPU costs charged to the calling (virtual) thread.

    These give read-side benchmarks realistic microsecond-scale costs when
    everything is page-cache resident (the paper's server has 2 TB DRAM, so
    its read workloads rarely touch the SSD either).
    """

    name: str
    memcpy_bw: float  # page-cache copy bandwidth, bytes/s
    memtable_insert_ns: int
    memtable_lookup_ns: int
    merge_entry_ns: int
    bloom_check_ns: int
    block_decode_ns: int
    iter_next_ns: int
    crc_per_kib_ns: int
    syscall_ns: int

    def memcpy_ns(self, nbytes: int) -> int:
        """Cost of copying ``nbytes`` through the page cache."""
        return int(nbytes * 1e9 / self.memcpy_bw)


#: Xeon Gold 6342-class CPU costs (coarse; only relative scale matters).
DEFAULT_CPU = CpuProfile(
    name="xeon-6342",
    memcpy_bw=5.0 * GIB,
    memtable_insert_ns=600,
    memtable_lookup_ns=400,
    merge_entry_ns=450,
    bloom_check_ns=120,
    block_decode_ns=1400,
    iter_next_ns=150,
    crc_per_kib_ns=140,
    syscall_ns=300,
)
