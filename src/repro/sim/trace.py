"""Optional device I/O tracing.

Attach a :class:`IOTrace` to an :class:`~repro.sim.ssd.SSD` to record
every read/write/flush with its submission and completion times — useful
for debugging timing behaviour and for the examples' timeline output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim.ssd import SSD


@dataclass(frozen=True)
class IOEvent:
    """One device operation."""

    kind: str  # 'read' | 'write' | 'flush'
    nbytes: int
    submitted_at: int
    completed_at: int
    sequential: bool

    @property
    def queued_ns(self) -> int:
        """Time spent waiting behind earlier I/O."""
        return max(self.completed_at - self.submitted_at, 0)


class IOTrace:
    """Records device operations by wrapping an SSD's methods.

    >>> trace = IOTrace.attach(ssd)
    >>> ... run workload ...
    >>> trace.detach()
    >>> len(trace.events)
    """

    def __init__(self, device: SSD, capacity: int = 1_000_000) -> None:
        self.device = device
        self.capacity = capacity
        self.events: List[IOEvent] = []
        self.dropped = 0
        self._orig_write: Optional[Callable] = None
        self._orig_read: Optional[Callable] = None
        self._orig_flush: Optional[Callable] = None

    @classmethod
    def attach(cls, device: SSD, capacity: int = 1_000_000) -> "IOTrace":
        trace = cls(device, capacity)
        trace._orig_write = device.write
        trace._orig_read = device.read
        trace._orig_flush = device.flush

        def write(nbytes: int, at: int, sequential: bool = True) -> int:
            done = trace._orig_write(nbytes, at, sequential)
            trace._record("write", nbytes, at, done, sequential)
            return done

        def read(nbytes: int, at: int, sequential: bool = True) -> int:
            done = trace._orig_read(nbytes, at, sequential)
            trace._record("read", nbytes, at, done, sequential)
            return done

        def flush(at: int) -> int:
            done = trace._orig_flush(at)
            trace._record("flush", 0, at, done, True)
            return done

        device.write = write
        device.read = read
        device.flush = flush
        return trace

    def detach(self) -> None:
        if self._orig_write is not None:
            self.device.write = self._orig_write
            self.device.read = self._orig_read
            self.device.flush = self._orig_flush
            self._orig_write = None

    def _record(
        self, kind: str, nbytes: int, at: int, done: int, sequential: bool
    ) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(IOEvent(kind, nbytes, int(at), int(done), sequential))

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def totals(self) -> "dict[str, int]":
        out: "dict[str, int]" = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
            out[f"{event.kind}_bytes"] = (
                out.get(f"{event.kind}_bytes", 0) + event.nbytes
            )
        return out

    def format_timeline(self, limit: int = 50) -> str:
        """First ``limit`` events as a readable timeline (debugging aid)."""
        lines = ["      t(us)   done(us)  op     bytes"]
        for event in self.events[:limit]:
            lines.append(
                f"{event.submitted_at / 1000:11.1f} "
                f"{event.completed_at / 1000:10.1f}  "
                f"{event.kind:5s} {event.nbytes:>9d}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
