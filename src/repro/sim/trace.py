"""Optional device I/O tracing (adapter over :mod:`repro.obs`).

Attach a :class:`IOTrace` to an :class:`~repro.sim.ssd.SSD` to record
every read/write/flush with its submission and completion times — useful
for debugging timing behaviour and for the examples' timeline output.

Historically this wrapped the SSD's methods; it is now a thin adapter
that subscribes to the device's I/O listener hook and stores events in
an :class:`~repro.obs.events.IOLog`. The attach/detach API and the event
records are unchanged. New code observing a whole stack should prefer
``MetricRegistry.trace_io`` (see :mod:`repro.obs`), which uses the same
mechanism.
"""

from __future__ import annotations

from repro.obs.events import IOEvent, IOLog
from repro.sim.ssd import SSD

__all__ = ["IOEvent", "IOTrace"]


class IOTrace:
    """Records device operations by subscribing to an SSD's I/O events.

    >>> trace = IOTrace.attach(ssd)
    >>> ... run workload ...
    >>> trace.detach()
    >>> len(trace.events)
    """

    def __init__(self, device: SSD, capacity: int = 1_000_000) -> None:
        self.device = device
        self.capacity = capacity
        self.log = IOLog(capacity)
        self._attached = False

    @classmethod
    def attach(cls, device: SSD, capacity: int = 1_000_000) -> "IOTrace":
        trace = cls(device, capacity)
        device.add_io_listener(trace._record)
        trace._attached = True
        return trace

    def detach(self) -> None:
        if self._attached:
            self.device.remove_io_listener(self._record)
            self._attached = False

    def _record(
        self, kind: str, nbytes: int, at: int, done: int, sequential: bool
    ) -> None:
        self.log.record(kind, nbytes, at, done, sequential)

    @property
    def events(self) -> "list[IOEvent]":
        return self.log.events

    @property
    def dropped(self) -> int:
        return self.log.dropped

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def totals(self) -> "dict[str, int]":
        return self.log.totals()

    def format_timeline(self, limit: int = 50) -> str:
        """First ``limit`` events as a readable timeline (debugging aid)."""
        return self.log.format_timeline(limit)
