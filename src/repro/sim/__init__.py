"""Discrete-event simulation substrate.

This package provides the virtual-time machinery the reproduction runs on:

- :class:`repro.sim.clock.VirtualClock` — monotonic virtual nanoseconds.
- :class:`repro.sim.events.EventQueue` — heap-ordered timed callbacks used
  for journal-commit timers, writeback and reclamation polls.
- :class:`repro.sim.ssd.SSD` — the simulated solid-state drive with a shared
  busy timeline, bandwidth/latency parameters and FLUSH-barrier costs.
- :class:`repro.sim.latency.DeviceProfile` — calibrated device parameters
  (the default profile approximates the Samsung PM883 used by the paper).
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.latency import CpuProfile, DeviceProfile, PM883, SLOW_HDD_LIKE
from repro.sim.ssd import SSD
from repro.sim.stats import DeviceStats, SyncStats
from repro.sim.trace import IOEvent, IOTrace

__all__ = [
    "VirtualClock",
    "EventQueue",
    "CpuProfile",
    "DeviceProfile",
    "PM883",
    "SLOW_HDD_LIKE",
    "SSD",
    "DeviceStats",
    "SyncStats",
    "IOEvent",
    "IOTrace",
]
