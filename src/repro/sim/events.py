"""Timed-event queue for the simulation.

Background activities — the JBD2 commit timer, dirty-page writeback, the
NobLSM reclamation poll — register callbacks here. Foreground code calls
:meth:`EventQueue.run_until` whenever it advances the clock, so background
work that "would have happened by now" is applied before the foreground
observes any state.

Hot-path notes: ``run_until`` is called once or more per simulated
operation, almost always with an empty-or-idle queue, so it keeps an
allocation-free fast path (peek the heap top, advance the clock, return).
Cancelled events are removed *lazily*: ``cancel()`` only flips a flag and
decrements the live counter; the heap is compacted in one O(n) pass when
cancelled entries outnumber live ones, which keeps both ``__len__`` and
the scheduling operations O(log n) amortised.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.clock import VirtualClock

Callback = Callable[[int], None]

#: compaction trigger: at least this many cancelled entries *and* more
#: cancelled than live (amortises the O(n) rebuild over O(n) cancels)
_COMPACT_MIN_CANCELLED = 64


class Interrupt(Exception):
    """Raised out of :meth:`EventQueue.run_until` by an interrupt event.

    The crash-test harness uses this to stop a simulation at a chosen
    virtual time: the exception unwinds through whatever foreground call
    was advancing the clock, leaving the stack frozen in the state it had
    when the interrupt's timestamp was reached. ``when`` is the scheduled
    firing time.
    """

    def __init__(self, when: int) -> None:
        super().__init__(f"simulation interrupted at {when}ns")
        self.when = when


class Event:
    """A scheduled callback. ``cancel()`` prevents a pending firing."""

    __slots__ = ("when", "callback", "cancelled", "seq", "_queue")

    def __init__(self, when: int, callback: Callback, seq: int, queue) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False
        self.seq = seq
        self._queue = queue

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(when={self.when}, {state})"


class EventQueue:
    """Heap-ordered queue of timed callbacks on a shared virtual clock.

    Events scheduled at the same timestamp fire in scheduling order.
    Callbacks may schedule further events (including at the current time);
    ``run_until`` keeps draining until no event remains at or before the
    target timestamp.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._heap: List[Tuple[int, int, Event]] = []
        self._next_seq = 0
        self._running = False
        self._live = 0       # pending (non-cancelled) events
        self._cancelled = 0  # cancelled events still sitting in the heap

    def __len__(self) -> int:
        """Number of pending events — O(1) via the live counter."""
        return self._live

    def _note_cancel(self) -> None:
        """A pending event was cancelled: update counters, maybe compact."""
        self._live -= 1
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled > self._live
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries in one pass (lazy-deletion compaction).

        ``(when, seq)`` ordering is preserved by re-heapifying the
        filtered list, so firing order is unchanged. The filter is applied
        *in place* (slice assignment) because ``run_until`` drains through
        a local alias of the heap; rebinding ``self._heap`` would leave
        that alias pointing at a stale list when a callback's cancel trips
        compaction mid-drain.
        """
        self._heap[:] = [item for item in self._heap if not item[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def schedule(self, when: int, callback: Callback) -> Event:
        """Schedule ``callback(fire_time)`` at absolute virtual time ``when``.

        Scheduling in the past is clamped to the present: the event fires at
        the next ``run_until``.
        """
        when = int(when)
        now = self.clock.now
        if when < now:
            when = now
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(when, callback, seq, self)
        heapq.heappush(self._heap, (when, seq, event))
        self._live += 1
        return event

    def schedule_after(self, delay: int, callback: Callback) -> Event:
        """Schedule ``callback`` to fire ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(self.clock.now + delay, callback)

    def schedule_interrupt(self, when: int) -> Event:
        """Schedule an :class:`Interrupt` to be raised at virtual time ``when``.

        The exception propagates out of the ``run_until`` call that
        reaches the timestamp, so the caller driving the simulation can
        catch it and inspect (or crash) the frozen stack. One-shot:
        firing removes the event; ``cancel()`` disarms it.
        """

        def fire(fire_time: int) -> None:
            raise Interrupt(fire_time)

        return self.schedule(when, fire)

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]

    def run_until(self, timestamp: int) -> int:
        """Fire every pending event at or before ``timestamp``.

        The clock advances to each event's time while it fires, then to
        ``timestamp``. Returns the number of callbacks that ran. Re-entrant
        calls (a callback advancing time itself) are flattened: the inner
        call returns immediately and the outer loop picks up any newly
        scheduled work.
        """
        if self._running:
            return 0
        heap = self._heap
        clock = self.clock
        # Fast path: nothing due (the overwhelmingly common case on the
        # per-op call sites) — no flag flips, no try/finally frame cost.
        if not heap or heap[0][0] > timestamp:
            clock.advance_to(timestamp)
            return 0
        self._running = True
        fired = 0
        heappop = heapq.heappop
        try:
            while heap and heap[0][0] <= timestamp:
                _, _, event = heappop(heap)
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._live -= 1
                # Detach before firing: a later cancel() on an event that
                # already fired (stale timer handles, the crash harness
                # cancelling its interrupt) must not touch the counters.
                event._queue = None
                clock.advance_to(event.when)
                event.callback(event.when)
                fired += 1
        finally:
            self._running = False
        clock.advance_to(timestamp)
        return fired

    def drain(self, limit: int = 1_000_000) -> int:
        """Run events until the queue is empty (bounded by ``limit``)."""
        fired = 0
        while fired < limit:
            nxt = self.next_event_time()
            if nxt is None:
                break
            fired += self.run_until(nxt)
        return fired
