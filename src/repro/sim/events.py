"""Timed-event queue for the simulation.

Background activities — the JBD2 commit timer, dirty-page writeback, the
NobLSM reclamation poll — register callbacks here. Foreground code calls
:meth:`EventQueue.run_until` whenever it advances the clock, so background
work that "would have happened by now" is applied before the foreground
observes any state.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.sim.clock import VirtualClock

Callback = Callable[[int], None]


class Interrupt(Exception):
    """Raised out of :meth:`EventQueue.run_until` by an interrupt event.

    The crash-test harness uses this to stop a simulation at a chosen
    virtual time: the exception unwinds through whatever foreground call
    was advancing the clock, leaving the stack frozen in the state it had
    when the interrupt's timestamp was reached. ``when`` is the scheduled
    firing time.
    """

    def __init__(self, when: int) -> None:
        super().__init__(f"simulation interrupted at {when}ns")
        self.when = when


class Event:
    """A scheduled callback. ``cancel()`` prevents a pending firing."""

    __slots__ = ("when", "callback", "cancelled", "seq")

    def __init__(self, when: int, callback: Callback, seq: int) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False
        self.seq = seq

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(when={self.when}, {state})"


class EventQueue:
    """Heap-ordered queue of timed callbacks on a shared virtual clock.

    Events scheduled at the same timestamp fire in scheduling order.
    Callbacks may schedule further events (including at the current time);
    ``run_until`` keeps draining until no event remains at or before the
    target timestamp.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._heap: List[Tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._running = False

    def __len__(self) -> int:
        return sum(1 for (_, _, ev) in self._heap if not ev.cancelled)

    def schedule(self, when: int, callback: Callback) -> Event:
        """Schedule ``callback(fire_time)`` at absolute virtual time ``when``.

        Scheduling in the past is clamped to the present: the event fires at
        the next ``run_until``.
        """
        when = max(int(when), self.clock.now)
        event = Event(when, callback, next(self._counter))
        heapq.heappush(self._heap, (when, event.seq, event))
        return event

    def schedule_after(self, delay: int, callback: Callback) -> Event:
        """Schedule ``callback`` to fire ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(self.clock.now + delay, callback)

    def schedule_interrupt(self, when: int) -> Event:
        """Schedule an :class:`Interrupt` to be raised at virtual time ``when``.

        The exception propagates out of the ``run_until`` call that
        reaches the timestamp, so the caller driving the simulation can
        catch it and inspect (or crash) the frozen stack. One-shot:
        firing removes the event; ``cancel()`` disarms it.
        """

        def fire(fire_time: int) -> None:
            raise Interrupt(fire_time)

        return self.schedule(when, fire)

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or ``None``."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def run_until(self, timestamp: int) -> int:
        """Fire every pending event at or before ``timestamp``.

        The clock advances to each event's time while it fires, then to
        ``timestamp``. Returns the number of callbacks that ran. Re-entrant
        calls (a callback advancing time itself) are flattened: the inner
        call returns immediately and the outer loop picks up any newly
        scheduled work.
        """
        if self._running:
            return 0
        self._running = True
        fired = 0
        try:
            while True:
                nxt = self.next_event_time()
                if nxt is None or nxt > timestamp:
                    break
                _, _, event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.clock.advance_to(event.when)
                event.callback(event.when)
                fired += 1
        finally:
            self._running = False
        self.clock.advance_to(timestamp)
        return fired

    def drain(self, limit: int = 1_000_000) -> int:
        """Run events until the queue is empty (bounded by ``limit``)."""
        fired = 0
        while fired < limit:
            nxt = self.next_event_time()
            if nxt is None:
                break
            fired += self.run_until(nxt)
        return fired
