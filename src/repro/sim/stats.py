"""Counters collected during a simulation run.

Two stat families matter for the paper's evaluation:

- :class:`DeviceStats` — bytes/IOs moved by the device, flush count, time
  the device spent busy. Feeds Figure 2a and general sanity checks.
- :class:`SyncStats` — the number of sync calls an application issued and
  the volume of data those syncs made durable. Feeds Table 1.

Both follow one contract so harnesses can treat them uniformly and so
they can serve as snapshot *sources* for an observability registry
(:mod:`repro.obs`): ``snapshot() -> Dict[str, object]`` with only
JSON-serializable values, ``reset()`` back to the zero state, and
``from_snapshot(data)`` reconstructing an equal object (the round-trip
property: ``T.from_snapshot(x.snapshot()) == x``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.latency import GIB


@dataclass(slots=True)
class DeviceStats:
    """Device-side accounting, updated by :class:`repro.sim.ssd.SSD`.

    ``channel_busy_ns`` attributes busy time to each channel of a
    multi-queue device; it stays empty on single-channel devices so
    their snapshots are identical to the pre-multi-queue schema. A FLUSH
    barrier drains every channel, so its service time is charged to all
    of them — ``sum(channel_busy_ns)`` can therefore exceed ``busy_ns``.
    """

    bytes_written: int = 0
    bytes_read: int = 0
    write_ios: int = 0
    read_ios: int = 0
    flushes: int = 0
    busy_ns: int = 0
    channel_busy_ns: List[int] = field(default_factory=list)

    def reset(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_ios = 0
        self.read_ios = 0
        self.flushes = 0
        self.busy_ns = 0
        self.channel_busy_ns = [0] * len(self.channel_busy_ns)

    def snapshot(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "write_ios": self.write_ios,
            "read_ios": self.read_ios,
            "flushes": self.flushes,
            "busy_ns": self.busy_ns,
        }
        if self.channel_busy_ns:
            doc["channel_busy_ns"] = list(self.channel_busy_ns)
        return doc

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "DeviceStats":
        return cls(
            bytes_written=int(data.get("bytes_written", 0)),
            bytes_read=int(data.get("bytes_read", 0)),
            write_ios=int(data.get("write_ios", 0)),
            read_ios=int(data.get("read_ios", 0)),
            flushes=int(data.get("flushes", 0)),
            busy_ns=int(data.get("busy_ns", 0)),
            channel_busy_ns=[int(v) for v in data.get("channel_busy_ns", [])],
        )


@dataclass(slots=True)
class SyncStats:
    """Application-level sync accounting (Table 1 of the paper).

    ``sync_calls`` counts explicit fsync/fdatasync invocations; a sync's
    ``bytes`` are the dirty bytes it forced to the device. ``by_reason``
    breaks syncs down by the code path that issued them (wal, minor, major,
    manifest), which the ablation benches use.
    """

    sync_calls: int = 0
    bytes_synced: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)
    bytes_by_reason: Dict[str, int] = field(default_factory=dict)

    def record(self, nbytes: int, reason: str = "unspecified") -> None:
        self.sync_calls += 1
        self.bytes_synced += nbytes
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        self.bytes_by_reason[reason] = (
            self.bytes_by_reason.get(reason, 0) + nbytes
        )

    def reset(self) -> None:
        self.sync_calls = 0
        self.bytes_synced = 0
        self.by_reason.clear()
        self.bytes_by_reason.clear()

    @property
    def gib_synced(self) -> float:
        return self.bytes_synced / GIB

    def snapshot(self) -> Dict[str, object]:
        return {
            "sync_calls": self.sync_calls,
            "bytes_synced": self.bytes_synced,
            "by_reason": dict(self.by_reason),
            "bytes_by_reason": dict(self.bytes_by_reason),
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "SyncStats":
        return cls(
            sync_calls=int(data.get("sync_calls", 0)),
            bytes_synced=int(data.get("bytes_synced", 0)),
            by_reason=dict(data.get("by_reason", {})),
            bytes_by_reason=dict(data.get("bytes_by_reason", {})),
        )
