"""Virtual time.

Every duration in the reproduction is expressed in *virtual nanoseconds*.
The clock only moves forward; components advance it when they account for
CPU work or wait for device completions.
"""

from __future__ import annotations

NANOS_PER_SEC = 1_000_000_000
NANOS_PER_MS = 1_000_000
NANOS_PER_US = 1_000


def seconds(value: float) -> int:
    """Convert seconds to integer virtual nanoseconds."""
    return int(value * NANOS_PER_SEC)


def millis(value: float) -> int:
    """Convert milliseconds to integer virtual nanoseconds."""
    return int(value * NANOS_PER_MS)


def micros(value: float) -> int:
    """Convert microseconds to integer virtual nanoseconds."""
    return int(value * NANOS_PER_US)


def to_seconds(nanos: int) -> float:
    """Convert virtual nanoseconds to float seconds."""
    return nanos / NANOS_PER_SEC


def to_micros(nanos: int) -> float:
    """Convert virtual nanoseconds to float microseconds."""
    return nanos / NANOS_PER_US


class VirtualClock:
    """A monotonic virtual clock measured in integer nanoseconds.

    The clock is shared by the device, the file system and the store.
    ``advance_to`` moves time forward and is a no-op for timestamps in the
    past, which makes it safe for out-of-order accounting of overlapping
    activities (e.g. a background compaction that finished before the
    foreground thread next looks at the clock).
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Move the clock forward to ``timestamp`` (never backwards)."""
        if timestamp > self._now:
            self._now = int(timestamp)
        return self._now

    def advance_by(self, delta: int) -> int:
        """Move the clock forward by ``delta`` nanoseconds."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += int(delta)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now}ns, {to_seconds(self._now):.6f}s)"
