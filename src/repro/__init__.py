"""NobLSM reproduction (DAC 2022).

A pure-Python, discrete-event reproduction of *NobLSM: An LSM-tree with
Non-blocking Writes for SSDs*: a LevelDB-like LSM-tree and six competitor
stores running on a simulated Ext4/JBD2/SSD stack in virtual time.

Quick start::

    from repro import StorageStack, NobLSM

    stack = StorageStack()
    db = NobLSM(stack)
    t = db.put(b"key", b"value", at=0)
    value, t = db.get(b"key", at=t)
"""

from repro.core.noblsm import NobLSM
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB, Snapshot
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch

__version__ = "1.0.0"

__all__ = [
    "NobLSM",
    "DB",
    "Options",
    "StackConfig",
    "StorageStack",
    "Snapshot",
    "WriteBatch",
    "__version__",
]
