"""NobLSM: the paper's store (Section 4).

NobLSM changes LevelDB in exactly the places the paper patches (~200
LoC): major-compaction outputs are *not* synced — the store records their
inodes with the ``check_commit`` syscall and lets Ext4's asynchronous
journal commits persist them; compacted input SSTables become *shadow*
files, excluded from reads but retained on the SSD until every successor
is committed; a 5-second reclamation poll (matching Ext4's commit
interval) queries ``is_committed`` and deletes reclaimable shadows. The
MANIFEST is likewise left to asynchronous commits — the single remaining
sync is the L0 SSTable fsync in a minor compaction, so each KV pair is
synced exactly once.

Crash consistency falls out of Ext4's ordered journaling: a durable
MANIFEST prefix can only reference SSTables whose data committed in the
same or an earlier transaction, and shadows are deleted only after their
successors' transaction committed — so recovery always finds a complete,
consistent version (Section 4.4).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.dependency import DependencyTracker, SSTableRef
from repro.fs.stack import StorageStack
from repro.lsm.compaction import Compaction
from repro.lsm.db import DB
from repro.lsm.filenames import parse_file_name, table_file_name
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData


def noblsm_options(base: Optional[Options] = None) -> Options:
    """The sync policy NobLSM runs with (on top of any base tuning).

    KV pairs are synced once (the L0 fdatasync at minor compactions);
    everything else — major-compaction outputs *and* the MANIFEST — is
    left to Ext4's asynchronous commits, matching Table 1's ~160 syncs.
    Crash consistency is preserved by three NobLSM-side mechanisms:

    - recovery validates every MANIFEST-referenced table and rolls lost
      compactions back to their retained predecessors
      (:meth:`NobLSM._validate_recovered_file`);
    - recovery adopts intact orphan L0 tables whose sequence numbers
      exceed the recovered MANIFEST's — an fdatasync'd L0 table whose
      version edit was lost with the volatile MANIFEST tail
      (:meth:`NobLSM._adopt_orphan_tables`);
    - shadow reclamation additionally waits for the MANIFEST inode to
      commit (a ``check_commit`` barrier), so predecessors are never
      durably deleted before the edit that removes them is durable.
    """
    options = base if base is not None else Options()
    options.sync.sync_minor = True  # the one sync per KV pair
    options.sync.sync_major = False
    options.sync.sync_manifest = False
    options.sync.nob_commit = True
    return options


class NobLSM(DB):
    """The non-blocking LSM-tree."""

    store_name = "noblsm"

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        self.tracker = DependencyTracker()
        self.syscalls = stack.syscalls
        self.reclaim_runs = 0
        self.shadows_deleted = 0
        self._reclaim_timer = None
        super().__init__(stack, dbname, options=noblsm_options(options))
        self._arm_reclaim_timer()

    # ------------------------------------------------------------------
    # persistence hooks
    # ------------------------------------------------------------------

    def _persist_major_outputs(
        self, outputs: List[FileMetaData], at: int
    ) -> int:
        """No syncs: ask Ext4 to track the new SSTables' inodes instead."""
        if not outputs:
            return at
        return self.syscalls.check_commit([meta.ino for meta in outputs], at)

    def _dispose_inputs(
        self,
        compaction: Compaction,
        outputs: List[FileMetaData],
        at: int,
    ) -> int:
        """Retain inputs as shadow backups until successors commit."""
        if not outputs:
            # Everything was dropped (all tombstones): nothing new to wait
            # for, the inputs are obsolete the moment the edit commits.
            # Retaining them costs nothing, but without successors there
            # is no commit to wait on, so fall back to LevelDB behaviour.
            return super()._dispose_inputs(compaction, outputs, at)
        predecessors = [
            SSTableRef(
                number=meta.number,
                ino=meta.ino,
                path=table_file_name(self.dbname, meta.number),
            )
            for meta in compaction.all_inputs
        ]
        successors = [
            SSTableRef(
                number=meta.number,
                ino=meta.ino,
                path=table_file_name(self.dbname, meta.number),
            )
            for meta in outputs
        ]
        for meta in compaction.all_inputs:
            meta.shadow = True
        manifest = self.versions._manifest
        barrier = [manifest.ino] if manifest is not None else []
        self.tracker.register(predecessors, successors, barrier_inos=barrier)
        # (Re-)track the manifest inode: its entry returns to Pending
        # while the freshly appended edit is still volatile, and moves to
        # Committed once the edit's transaction commits.
        return self.syscalls.check_commit(barrier, at)

    def _protected_table_numbers(self) -> Set[int]:
        return self.tracker.shadow_numbers()

    def _recovery_validator(self):
        return self._validate_recovered_file

    def _adopt_orphan_tables(self, at: int) -> int:
        """Rescue fdatasync'd L0 tables whose version edit was lost.

        NobLSM does not sync the MANIFEST, so a crash can lose the tail
        of edits — including a minor compaction's — while the L0 table it
        added is durable on disk (it was fdatasync'd) and the WAL behind
        it may already be gone. Any intact orphan table whose sequence
        numbers exceed the recovered ``last_sequence`` holds strictly
        newer data than everything the MANIFEST references (edits record
        ``last_sequence`` monotonically and durably as a prefix), so it
        is adopted back into level 0. Retained shadow predecessors can
        never qualify: their entries' sequences are covered by earlier,
        durable edits.
        """
        from repro.lsm.sstable import Table
        from repro.lsm.format import CorruptionError
        from repro.lsm.version import VersionEdit

        t = at
        live = set(self.versions.current.all_file_numbers())
        adopted = []
        for path in self.fs.list_dir(self.dbname + "/"):
            kind, number = parse_file_name(self.dbname, path)
            if kind != "table" or number in live:
                continue
            try:
                table, t = Table.open(self.fs, path, at=t)
            except CorruptionError:
                continue  # volatile tail lost in the crash: not durable
            if not table.index.keys:
                continue
            if not self._orphan_intact(table):
                continue
            max_seq, t = table.max_sequence(t)
            if max_seq <= self.versions.last_sequence:
                continue  # a shadow or an already-covered output
            smallest, t = table.smallest_key(t)
            handle, t = self.fs.open(path, at=t)
            adopted.append(
                (
                    max_seq,
                    FileMetaData(
                        number=number,
                        file_size=handle.size,
                        smallest=smallest,
                        largest=table.largest_key(),
                        ino=handle.ino,
                    ),
                )
            )
        if not adopted:
            return t
        adopted.sort(key=lambda pair: pair[0])
        edit = VersionEdit()
        for max_seq, meta in adopted:
            edit.add_file(0, meta)
            if max_seq > self.versions.last_sequence:
                self.versions.last_sequence = max_seq
            if meta.number >= self.versions.next_file_number:
                self.versions.next_file_number = meta.number + 1
        self.stats.extras["adopted_orphans"] = (
            self.stats.extras.get("adopted_orphans", 0) + len(adopted)
        )
        return self.versions.log_and_apply(edit, t)

    def _orphan_intact(self, table) -> bool:
        """Hook: content-level orphan checks (noblsm-kv: vLog pointers)."""
        return True

    def _validate_recovered_file(self, meta: FileMetaData) -> bool:
        """Did this MANIFEST-referenced SSTable survive the crash intact?

        A table whose journal transaction never committed is missing or
        truncated after a power failure; the recovered version must then
        fall back to the retained predecessors (Section 4.4).
        """
        path = table_file_name(self.dbname, meta.number)
        if not self.fs.exists(path):
            return False
        return self.fs.stat_size(path) == meta.file_size

    # ------------------------------------------------------------------
    # reclamation (Section 4.3)
    # ------------------------------------------------------------------

    def _arm_reclaim_timer(self) -> None:
        self._reclaim_timer = self.events.schedule_after(
            self.options.reclaim_interval_ns, self._reclaim_tick
        )

    def _reclaim_tick(self, when: int) -> None:
        if self.closed:
            return
        self.reclaim(when)
        self._arm_reclaim_timer()

    def reclaim(self, at: int) -> int:
        """Poll ``is_committed`` and delete reclaimable shadows."""
        self.reclaim_runs += 1
        t = at

        def committed(ino: int) -> bool:
            nonlocal t
            ok, t = self.syscalls.is_committed(ino, t)
            return ok

        self.tracker.resolve(committed)
        for group in self.tracker.reclaimable():
            span = None
            if self._tracer is not None:
                span = self.obs.start_span(
                    "db.retire",
                    t,
                    group=group.group_id,
                    predecessors=len(group.predecessors),
                    successors=len(group.successors),
                )
                # close the causal chain: the commits that made the
                # successors durable flow into this retirement
                for ref in group.successors:
                    commit_span = self._tracer.commit_span_of(ref.ino)
                    if commit_span is not None:
                        self._tracer.link(commit_span, span, name="retire")
            for ref in group.predecessors:
                self.table_cache.evict(ref.number)
                if self.fs.exists(ref.path):
                    t = self.fs.unlink(ref.path, at=t)
                    self.shadows_deleted += 1
            self.tracker.mark_reclaimed(group)
            if span is not None:
                span.end(t)
        return t

    @property
    def shadow_count(self) -> int:
        """Shadow SSTables currently retained on the SSD."""
        return sum(
            1
            for number in self.tracker.shadow_numbers()
            if self.fs.exists(table_file_name(self.dbname, number))
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self, at: int) -> int:
        """Wait for background work, settle the journal, reclaim, close."""
        t = self.wait_for_background(at)
        t = max(t, self.stack.settle())
        t = self.reclaim(t)
        if self._reclaim_timer is not None:
            self._reclaim_timer.cancel()
        self.closed = True
        return t
