"""NobLSM — the paper's primary contribution.

- :class:`repro.core.noblsm.NobLSM`: LevelDB with non-blocking major
  compactions, built on the two Ext4 syscalls.
- :class:`repro.core.dependency.DependencyTracker`: the global
  predecessor/successor sets with p-to-q mappings.
"""

from repro.core.dependency import DependencyGroup, DependencyTracker, SSTableRef
from repro.core.noblsm import NobLSM, noblsm_options

__all__ = [
    "DependencyGroup",
    "DependencyTracker",
    "SSTableRef",
    "NobLSM",
    "noblsm_options",
]
