"""noblsm-kv: NobLSM with WiscKey-style key-value separation.

Keys and small values stay in the LSM; values of at least
``Options.value_threshold`` bytes move to an append-only vLog at flush
time (see :mod:`repro.lsm.vlog` for the stored-value encoding). With
``value_threshold=None`` — the default — every hook stays unbound and
the store behaves byte-identically to plain :class:`NobLSM`.

Durability extends the paper's commit-gated retirement to space
reclamation:

- a minor dump fdatasyncs the dirty vLog segments *before* the L0
  table's own sync, so ordered journal commits guarantee a durable
  table's pointers resolve;
- major-compaction outputs (which may carry freshly relocated pointers)
  stay async: recovery re-validates every referenced table's pointers
  and rolls lost compactions back to their retained shadow predecessors;
- a segment whose live bytes reach zero is *retired*, not deleted: every
  compaction that dropped or relocated references into it contributed
  its output-table, destination-segment and MANIFEST inodes to the
  segment's commit barrier, and the reclaim poll unlinks the segment
  only once ``is_committed`` holds for the whole barrier — the same gate
  NobLSM applies to shadow SSTables.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.noblsm import NobLSM
from repro.fs.stack import StorageStack
from repro.lsm.compaction import Compaction
from repro.lsm.filenames import current_file_name, vlog_file_name
from repro.lsm.format import TYPE_VALUE
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData
from repro.lsm.vlog import (
    INLINE_PREFIX,
    POINTER_PREFIX,
    VLog,
    decode_pointer,
)
from repro.lsm.wal import BatchEntry


class NobLSMKV(NobLSM):
    """The non-blocking LSM-tree with a commit-gated value log."""

    store_name = "noblsm-kv"

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        opts = options if options is not None else Options()
        self._kv_enabled = opts.value_threshold is not None
        self.vlog: Optional[VLog] = None
        #: (segment, barrier inos) awaiting their commit gate
        self._segment_retirements: List[Tuple[int, List[int]]] = []
        #: per-compaction state (background jobs run host-serially)
        self._gc_set: Optional[FrozenSet[int]] = None
        self._compaction_touched: Set[int] = set()
        self._compaction_dest_inos: Set[int] = set()
        reopened = stack.fs.exists(current_file_name(dbname))
        if self._kv_enabled:
            self.vlog = VLog(
                stack.fs,
                dbname,
                opts.vlog_segment_bytes,
                opts.vlog_gc_garbage_ratio,
                obs=stack.obs,
            )
            # binding the hooks (instance attributes shadowing the DB
            # class defaults) is what switches the shared code paths over
            self._kv_separate = self._separate_value
            self._kv_rewrite = self._rewrite_value
            self._kv_drop = self._drop_value
            self._kv_resolve = self.vlog.resolve
        super().__init__(stack, dbname, options=opts)
        if self._kv_enabled:
            if self._observe:
                self.obs.register_source(f"db.{dbname}.vlog", self.vlog.snapshot)
            if reopened:
                self._rebuild_vlog_accounting(self.stack.now)

    # ------------------------------------------------------------------
    # write path: values carry the inline marker from the start
    # ------------------------------------------------------------------

    def write(self, entries: List[BatchEntry], at: int) -> int:
        if self._kv_enabled:
            entries = [
                (value_type, key, INLINE_PREFIX + value)
                if value_type == TYPE_VALUE
                else (value_type, key, value)
                for value_type, key, value in entries
            ]
        return super().write(entries, at)

    # ------------------------------------------------------------------
    # separation hooks (installed on the shared DB paths)
    # ------------------------------------------------------------------

    def _separate_value(self, stored: bytes, t: int) -> Tuple[bytes, int]:
        """Minor dump: move a large value to the vLog, keep a pointer."""
        if len(stored) - 1 < self.options.value_threshold:
            return stored, t
        return self.vlog.append(stored[1:], t)

    def _drop_value(self, stored: bytes) -> None:
        """Major compaction dropped an entry: its vLog bytes die."""
        if stored[:1] != POINTER_PREFIX:
            return
        segment, _, length = decode_pointer(stored)
        self.vlog.note_dead(segment, length)
        self._compaction_touched.add(segment)

    def _rewrite_value(self, stored: bytes, t: int) -> Tuple[bytes, int]:
        """Major compaction keeps an entry: GC-relocate if garbage-heavy.

        The GC candidate set is frozen at the compaction's first kept
        pointer, so one compaction sees one consistent view of segment
        garbage ratios.
        """
        if stored[:1] != POINTER_PREFIX:
            return stored, t
        if self._gc_set is None:
            self._gc_set = frozenset(self.vlog.gc_candidates())
        segment, offset, length = decode_pointer(stored)
        if segment not in self._gc_set:
            return stored, t
        pointer, t = self.vlog.relocate(segment, offset, length, t)
        self._compaction_touched.add(segment)
        destination = decode_pointer(pointer)[0]
        dest_ino = self.vlog.segment_ino(destination)
        if dest_ino is not None:
            self._compaction_dest_inos.add(dest_ino)
        return pointer, t

    # ------------------------------------------------------------------
    # persistence hooks
    # ------------------------------------------------------------------

    def _prepare_minor_sync(self, at: int) -> int:
        if not self._kv_enabled:
            return at
        return self.vlog.sync_dirty(at)

    def _dispose_inputs(
        self,
        compaction: Compaction,
        outputs: List[FileMetaData],
        at: int,
    ) -> int:
        t = super()._dispose_inputs(compaction, outputs, at)
        if not self._kv_enabled:
            return t
        touched = self._compaction_touched
        dest_inos = self._compaction_dest_inos
        self._compaction_touched = set()
        self._compaction_dest_inos = set()
        self._gc_set = None
        if touched:
            # the commit barrier for every segment this compaction
            # dropped or relocated references out of: the tables now
            # holding the surviving pointers, the segments holding the
            # relocated bytes, and the MANIFEST edit that installed them
            barrier = [meta.ino for meta in outputs]
            barrier.extend(sorted(dest_inos))
            manifest = self.versions._manifest
            if manifest is not None:
                barrier.append(manifest.ino)
            for segment in sorted(touched):
                self.vlog.note_barrier(segment, barrier)
            if barrier:
                t = self.syscalls.check_commit(barrier, t)
        return self._register_dead_segments(t)

    def _register_dead_segments(self, at: int) -> int:
        """Move zero-live sealed segments into the retirement queue."""
        t = at
        for segment in self.vlog.dead_segments():
            barrier = self.vlog.take_retirement(segment)
            self._segment_retirements.append((segment, barrier))
            if barrier:
                t = self.syscalls.check_commit(barrier, t)
        return t

    # ------------------------------------------------------------------
    # reclamation: the commit gate, extended to vLog segments
    # ------------------------------------------------------------------

    def reclaim(self, at: int) -> int:
        # Segment gates are polled BEFORE the shadow pass, and every gate
        # before any segment is unlinked. Ordering matters twice over:
        # unlinking erases an inode's commit record, a barrier table
        # about to be retired as a shadow (or a destination segment about
        # to be reclaimed) is necessarily committed *right now* — its own
        # data journaled no later than the successors that release it —
        # but would read as never-committed one unlink later.
        t = at
        if not self._kv_enabled:
            return super().reclaim(t)
        t = self._register_dead_segments(t)
        passed: List[int] = []
        remaining: List[Tuple[int, List[int]]] = []
        for segment, barrier in self._segment_retirements:
            ok, t = self._retirement_committed(barrier, t)
            if ok:
                passed.append(segment)
            else:
                remaining.append((segment, barrier))
        self._segment_retirements = remaining
        for segment in passed:
            t = self.vlog.reclaim_segment(segment, t)
        return super().reclaim(t)

    def _retirement_committed(
        self, barrier: List[int], at: int
    ) -> Tuple[bool, int]:
        """The commit gate for one segment retirement.

        Satisfaction is sticky: inos observed committed are pruned from
        the barrier in place, so a requirement once met stays met even if
        the ino's record is later erased (shadow unlink) or re-dirtied
        (the MANIFEST). Kept as a separate seam so the crash matrix's
        mutation test can break exactly this gate and assert the oracle
        catches it.
        """
        t = at
        waiting: List[int] = []
        for ino in barrier:
            ok, t = self.syscalls.is_committed(ino, t)
            if not ok:
                waiting.append(ino)
        barrier[:] = waiting
        return not waiting, t

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _validate_recovered_file(self, meta: FileMetaData) -> bool:
        if not super()._validate_recovered_file(meta):
            return False
        if not self._kv_enabled:
            return True
        from repro.lsm.format import CorruptionError
        from repro.lsm.sstable import Table
        from repro.lsm.filenames import table_file_name

        # pointer re-validation: a major output's relocated pointers are
        # only as durable as their destination segments, and neither was
        # synced — a table referencing lost vLog bytes must be treated
        # like a lost table and rolled back to its shadow predecessors.
        # The read happens at the current clock and its cost is not
        # billed to recovery, matching the size checks above.
        now = self.stack.now
        try:
            table, t = Table.open(
                self.fs, table_file_name(self.dbname, meta.number), at=now
            )
            entries, _ = table.all_entries(at=t)
        except CorruptionError:
            return False
        return self._pointers_resolve(entries)

    def _orphan_intact(self, table) -> bool:
        if not self._kv_enabled:
            return True
        entries, _ = table.all_entries(at=self.stack.now)
        return self._pointers_resolve(entries)

    def _pointers_resolve(self, entries) -> bool:
        """Every pointer lands inside an existing segment's byte range."""
        fs = self.fs
        for internal_key, value in entries:
            if internal_key[-8] != TYPE_VALUE or value[:1] != POINTER_PREFIX:
                continue
            segment, offset, length = decode_pointer(value)
            path = vlog_file_name(self.dbname, segment)
            if not fs.exists(path) or offset + length > fs.stat_size(path):
                return False
        return True

    def _rebuild_vlog_accounting(self, at: int) -> int:
        """Reopen: recount live bytes from the recovered version.

        The recovered version is ground truth — tables it dropped were
        already deleted and shadow tracking did not survive — so any
        segment no live table references can never be referenced again
        and is dropped immediately, commit gate not required.
        """
        t = at
        live: Dict[int, int] = {}
        for files in self.versions.current.files:
            for meta in files:
                if meta.shadow:
                    continue
                table, t = self.table_cache.get_table(meta.number, at=t)
                entries, t = table.all_entries(at=t)
                for internal_key, value in entries:
                    if (
                        internal_key[-8] == TYPE_VALUE
                        and value[:1] == POINTER_PREFIX
                    ):
                        segment, _, length = decode_pointer(value)
                        live[segment] = live.get(segment, 0) + length
        self.vlog.reset_live(live)
        self._segment_retirements = []
        for segment in self.vlog.dead_segments():
            self.vlog.take_retirement(segment)
            t = self.vlog.reclaim_segment(segment, t)
        return t

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def pending_segment_retirements(self) -> List[Tuple[int, List[int]]]:
        """Segments whose reclaim gate has not passed yet (tests)."""
        return list(self._segment_retirements)

    def describe(self) -> Dict[str, object]:
        doc = super().describe()
        if self._kv_enabled:
            doc["vlog"] = self.vlog.snapshot()
        return doc
