"""The global predecessor/successor sets (Section 4.1).

Every major compaction that produced ``q`` new SSTables from ``p`` old
ones registers a *dependency group*: the ``p`` predecessors may be
deleted only once all ``q`` successors are durable. Because Ext4 commits
asynchronously, many groups can be outstanding at once; the tracker
accumulates them globally, exactly as the paper's pair of sets does.

One subtlety the paper leaves implicit: a successor can itself be
compacted again *before* its transaction commits. Its file will then be
unlinked once the newer group resolves — at which point its table entry
is erased and ``is_committed`` can never become true. The tracker
therefore treats a successor as *settled* when it is either committed or
consumed by a later group that has itself resolved; crash consistency is
preserved because the consuming group retains it until its own
successors are durable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set


@dataclass
class SSTableRef:
    """Identity of one SSTable file inside the tracker."""

    number: int
    ino: int
    path: str


@dataclass
class DependencyGroup:
    """One p-to-q mapping from a major compaction."""

    group_id: int
    predecessors: List[SSTableRef]
    successors: List[SSTableRef]
    #: non-file inodes that must also commit before the group resolves —
    #: NobLSM tracks the MANIFEST inode here so predecessors are never
    #: deleted before the version edit that removes them is durable
    barrier_inos: List[int] = field(default_factory=list)
    resolved: bool = False
    reclaimed: bool = False
    #: successor inos already observed committed
    settled_inos: Set[int] = field(default_factory=set)

    @property
    def p(self) -> int:
        return len(self.predecessors)

    @property
    def q(self) -> int:
        return len(self.successors)


class DependencyTracker:
    """Global pair of sets plus the p-to-q mappings between them."""

    def __init__(self) -> None:
        self._groups: Dict[int, DependencyGroup] = {}
        self._ids = itertools.count(1)
        #: file number -> group that *produced* it (file is a successor)
        self._produced_by: Dict[int, int] = {}
        #: file number -> group that *consumed* it (file is a predecessor)
        self._consumed_by: Dict[int, int] = {}
        self.groups_registered = 0
        self.groups_resolved = 0

    # ------------------------------------------------------------------

    def register(
        self,
        predecessors: List[SSTableRef],
        successors: List[SSTableRef],
        barrier_inos: Optional[List[int]] = None,
    ) -> DependencyGroup:
        """Record a new p-to-q dependency from a finished compaction."""
        if not successors:
            raise ValueError("a dependency group needs at least one successor")
        group = DependencyGroup(
            group_id=next(self._ids),
            predecessors=list(predecessors),
            successors=list(successors),
            barrier_inos=list(barrier_inos or []),
        )
        self._groups[group.group_id] = group
        for ref in successors:
            self._produced_by[ref.number] = group.group_id
        for ref in predecessors:
            self._consumed_by[ref.number] = group.group_id
        self.groups_registered += 1
        return group

    def outstanding_groups(self) -> List[DependencyGroup]:
        return [g for g in self._groups.values() if not g.reclaimed]

    def unresolved_groups(self) -> List[DependencyGroup]:
        return [g for g in self._groups.values() if not g.resolved]

    def shadow_numbers(self) -> Set[int]:
        """File numbers of retained (not yet reclaimed) predecessors."""
        shadows: Set[int] = set()
        for group in self._groups.values():
            if not group.reclaimed:
                shadows.update(ref.number for ref in group.predecessors)
        return shadows

    # ------------------------------------------------------------------

    def _successor_settled(
        self,
        ref: SSTableRef,
        group: DependencyGroup,
        committed: Callable[[int], bool],
    ) -> bool:
        if ref.ino in group.settled_inos:
            return True
        if committed(ref.ino):
            group.settled_inos.add(ref.ino)
            return True
        consumer_id = self._consumed_by.get(ref.number)
        if consumer_id is not None:
            consumer = self._groups[consumer_id]
            if consumer.resolved:
                group.settled_inos.add(ref.ino)
                return True
        return False

    def resolve(
        self, committed: Callable[[int], bool]
    ) -> List[DependencyGroup]:
        """Mark groups whose successors are all settled; return them.

        ``committed`` is the ``is_committed`` syscall (or any oracle in
        tests). Resolution iterates to a fixed point because settling one
        group can transitively settle groups whose successors it consumed.
        """
        newly_resolved: List[DependencyGroup] = []
        progress = True
        while progress:
            progress = False
            for group in self._groups.values():
                if group.resolved:
                    continue
                if not all(committed(ino) for ino in group.barrier_inos):
                    continue
                if all(
                    self._successor_settled(ref, group, committed)
                    for ref in group.successors
                ):
                    group.resolved = True
                    self.groups_resolved += 1
                    newly_resolved.append(group)
                    progress = True
        return newly_resolved

    def reclaimable(self) -> List[DependencyGroup]:
        """Groups whose predecessors may be deleted now — *consecutively*.

        Deletion proceeds in registration order and stops at the first
        unresolved group (the paper: NobLSM "needs a structure to
        consecutively delete obsolete SSTables"). In-order deletion is
        what makes crash recovery sound: a durably deleted predecessor
        implies every earlier compaction's outputs were already durable,
        so the recovered MANIFEST can never be rolled back past a state
        that references a deleted file.
        """
        ready: List[DependencyGroup] = []
        for group_id in sorted(self._groups):
            group = self._groups[group_id]
            if not group.resolved:
                break
            if not group.reclaimed:
                ready.append(group)
        return ready

    def mark_reclaimed(self, group: DependencyGroup) -> None:
        """Predecessors deleted; the group's bookkeeping is finished.

        Groups stay in the map (they are tiny) so that later groups whose
        successors this group consumed can still observe ``resolved``.
        """
        group.reclaimed = True

    def clear(self) -> None:
        """Crash: the user-space sets are volatile."""
        self._groups.clear()
        self._produced_by.clear()
        self._consumed_by.clear()
