"""Crash-point exploration harness (the paper's Section 5.2, systematized).

The paper's consistency test pulls the plug once, mid-fillrandom, and
checks that nothing committed was lost. This package turns that single
hand-picked experiment into a sweep: a reference run discovers every
interesting virtual time (journal-commit boundaries, mid-commit,
mid-writeback, mid-WAL-append, mid-compaction, plus randomized times)
from the observability stream, and the workload is then deterministically
re-executed once per point with an :class:`~repro.sim.events.Interrupt`
scheduled at that time. At the interrupt the harness checks the shadow
retention invariant, injects ``Ext4.crash()``, recovers through the
normal ``DB`` open path (falling back to :func:`repro.lsm.repair.repair_db`),
and verifies the recovered store against a durability oracle:

- every acked-durable KV survives with its newest value (and an
  acked-durable delete stays deleted — no resurrection);
- every recovered value was actually written at some point (recovered
  state is a subset of history);
- no shadow predecessor SSTable is gone while a successor is uncommitted.

``python -m repro.bench.cli crash-matrix`` drives the sweep for both the
``noblsm`` store and the sync-everything baseline.
"""

from repro.crashtest.harness import (
    CrashMatrixConfig,
    CrashMatrixReport,
    MODES,
    PointResult,
    run_crash_matrix,
)
from repro.crashtest.oracle import DurabilityOracle, Violation
from repro.crashtest.points import (
    CrashPoint,
    SpanCollector,
    points_from_ops,
    points_from_spans,
    random_points,
    select_points,
)
from repro.crashtest.report import render_matrix, matrix_payload

__all__ = [
    "CrashMatrixConfig",
    "CrashMatrixReport",
    "CrashPoint",
    "DurabilityOracle",
    "MODES",
    "PointResult",
    "SpanCollector",
    "Violation",
    "matrix_payload",
    "points_from_ops",
    "points_from_spans",
    "random_points",
    "render_matrix",
    "run_crash_matrix",
    "select_points",
]
