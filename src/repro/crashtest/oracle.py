"""The durability oracle: what must a recovered store still contain?

The oracle shadows the workload from the outside: every operation is
recorded *before* it is submitted (``begin``) and marked complete when
the store acknowledges it (``ack``). At crash time the harness tells the
oracle which keys were still volatile (their newest version lived only
in the memtables and the unsynced WAL); everything else is acked-durable
and must survive recovery exactly.

Invariants checked against the recovered store:

1. **Durable exactness** — for every acked-durable key, the recovered
   value equals the newest completed write; an acked-durable delete
   stays deleted (no resurrection).
2. **No fabrication** — a volatile key may be lost or revert to an older
   version of itself, but may never return a value that was never
   written for that key.
3. **History subset** — scanning the whole recovered store, every
   (key, value) pair must appear in the workload history.

In ``sync_acked`` mode (the sync-everything baseline, where every write
fsyncs the WAL before acking) the volatile set is ignored: every
completed operation is durable by contract, and only the single
operation in flight at the crash is uncertain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

PUT = "put"
DELETE = "delete"


@dataclass(frozen=True)
class Violation:
    """One broken durability invariant."""

    kind: str
    key: bytes
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.key!r}: {self.detail}"


@dataclass
class LostTailStats:
    """How much of the volatile tail the crash actually cost."""

    volatile_keys: int = 0
    lost: int = 0  # volatile keys that came back as not-found
    reverted: int = 0  # volatile keys that reverted to an older version
    intact: int = 0  # volatile keys that survived with their newest value

    def snapshot(self) -> Dict[str, int]:
        return {
            "volatile_keys": self.volatile_keys,
            "lost": self.lost,
            "reverted": self.reverted,
            "intact": self.intact,
        }


class DurabilityOracle:
    """Tracks the acked-durable view of a keyspace through a workload."""

    def __init__(self, sync_acked: bool = False) -> None:
        self.sync_acked = sync_acked
        #: every value ever written per key (for the no-fabrication check)
        self.history: Dict[bytes, Set[bytes]] = {}
        #: newest *completed* operation per key: value bytes, or None for
        #: a completed delete
        self.completed: Dict[bytes, Optional[bytes]] = {}
        #: the single operation submitted but not yet acked
        self.in_flight: Optional[Tuple[str, bytes, Optional[bytes]]] = None
        self.ops_begun = 0
        self.ops_acked = 0

    # ------------------------------------------------------------------
    # workload recording
    # ------------------------------------------------------------------

    def begin(self, op: str, key: bytes, value: Optional[bytes]) -> None:
        """Record an operation the instant before it is submitted."""
        if op not in (PUT, DELETE):
            raise ValueError(f"unknown op {op!r}")
        if op is PUT or op == PUT:
            if value is None:
                raise ValueError("put needs a value")
            self.history.setdefault(key, set()).add(value)
        else:
            self.history.setdefault(key, set())
        self.in_flight = (op, key, value)
        self.ops_begun += 1

    def ack(self) -> None:
        """The store returned: the in-flight operation completed."""
        if self.in_flight is None:
            raise RuntimeError("ack without a begun operation")
        op, key, value = self.in_flight
        self.completed[key] = value if op == PUT else None
        self.in_flight = None
        self.ops_acked += 1

    # ------------------------------------------------------------------
    # crash-time views
    # ------------------------------------------------------------------

    def uncertain_keys(self, volatile: Iterable[bytes]) -> Set[bytes]:
        """Keys whose newest completed version may legitimately be lost."""
        uncertain = set() if self.sync_acked else set(volatile)
        if self.in_flight is not None:
            uncertain.add(self.in_flight[1])
        return uncertain

    def durable_view(
        self, volatile: Iterable[bytes]
    ) -> Dict[bytes, Optional[bytes]]:
        """key -> required recovered value (None = must stay deleted)."""
        uncertain = self.uncertain_keys(volatile)
        return {
            key: value
            for key, value in self.completed.items()
            if key not in uncertain
        }

    # ------------------------------------------------------------------
    # invariant checking
    # ------------------------------------------------------------------

    def check(
        self,
        recovered: Dict[bytes, Optional[bytes]],
        scanned: Iterable[Tuple[bytes, bytes]],
        volatile: Iterable[bytes],
    ) -> Tuple[List[Violation], LostTailStats]:
        """Verify the recovered store; returns (violations, lost-tail stats).

        ``recovered`` maps every key the workload ever touched to the
        value the recovered store returns (None = not found).
        ``scanned`` is a full iteration of the recovered store.
        ``volatile`` is the crash-time volatile key set.
        """
        violations: List[Violation] = []
        stats = LostTailStats()
        volatile_set = set(volatile)
        uncertain = self.uncertain_keys(volatile_set)
        durable = self.durable_view(volatile_set)

        for key, required in sorted(durable.items()):
            got = recovered.get(key)
            if required is None:
                if got is not None:
                    violations.append(
                        Violation(
                            "resurrected-delete",
                            key,
                            f"acked delete came back as {got!r}",
                        )
                    )
            elif got is None:
                violations.append(
                    Violation(
                        "lost-durable-key",
                        key,
                        f"acked-durable value {required!r} not found",
                    )
                )
            elif got != required:
                violations.append(
                    Violation(
                        "stale-durable-key",
                        key,
                        f"expected {required!r}, got {got!r}",
                    )
                )

        for key in sorted(uncertain):
            allowed = self.history.get(key, set())
            got = recovered.get(key)
            newest = self.completed.get(key)
            stats.volatile_keys += 1
            if got is None:
                stats.lost += 1
            elif got not in allowed:
                violations.append(
                    Violation(
                        "fabricated-value",
                        key,
                        f"recovered {got!r} was never written",
                    )
                )
            elif newest is not None and got == newest:
                stats.intact += 1
            else:
                stats.reverted += 1

        for key, value in scanned:
            allowed = self.history.get(key)
            if allowed is None:
                violations.append(
                    Violation(
                        "unknown-key",
                        key,
                        "recovered store contains a key never written",
                    )
                )
            elif value not in allowed:
                violations.append(
                    Violation(
                        "fabricated-value",
                        key,
                        f"scan returned {value!r}, never written for this key",
                    )
                )
        return violations, stats
