"""Rendering for crash-matrix sweeps: human text and machine JSON."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.crashtest.harness import CrashMatrixReport

PAYLOAD_SCHEMA = "repro.crashmatrix/1"


def matrix_payload(reports: List[CrashMatrixReport]) -> Dict[str, Any]:
    """A JSON-serialisable summary of one or more mode sweeps."""
    modes = []
    for report in reports:
        modes.append(
            {
                "mode": report.mode,
                "seed": report.seed,
                "num_ops": report.num_ops,
                "reference_end_ns": report.reference_end_ns,
                "points_explored": report.points_explored,
                "points_by_kind": report.points_by_kind,
                "recovery_modes": report.recovery_modes,
                "wal_tail_drops": report.wal_tail_drops,
                "lost_tail": report.lost_tail_totals,
                "violations": [
                    {"kind": v.kind, "key": v.key.decode("latin-1"),
                     "detail": v.detail}
                    for v in report.violations
                ],
                # trace snapshots of violated points (traced replays):
                # each is a bounded Chrome trace-event window ending at
                # the crash, for debugging the violation causally
                "traces": [
                    {
                        "point": {
                            "kind": result.point.kind,
                            "time_ns": result.point.time_ns,
                        },
                        "crashed_at": result.crashed_at,
                        "events": result.trace_events,
                    }
                    for result in report.results
                    if result.trace_events is not None
                ],
            }
        )
    return {
        "schema": PAYLOAD_SCHEMA,
        "modes": modes,
        "total_points": sum(r.points_explored for r in reports),
        "total_violations": sum(len(r.violations) for r in reports),
    }


def render_matrix(reports: List[CrashMatrixReport]) -> str:
    """A terminal-friendly summary table plus any violations, verbatim."""
    lines: List[str] = []
    lines.append("crash matrix")
    lines.append("=" * 64)
    for report in reports:
        recovery = report.recovery_modes
        tail = report.lost_tail_totals
        lines.append(
            f"mode={report.mode} seed={report.seed} ops={report.num_ops} "
            f"end={report.reference_end_ns}ns"
        )
        lines.append(
            f"  points explored : {report.points_explored}"
        )
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(report.points_by_kind.items())
        )
        lines.append(f"  by kind         : {kinds}")
        lines.append(
            f"  recovery        : open={recovery['open']} "
            f"repair={recovery['repair']} failed={recovery['failed']}"
        )
        lines.append(
            f"  wal tail drops  : {report.wal_tail_drops}"
        )
        lines.append(
            f"  volatile tail   : keys={tail['volatile_keys']} "
            f"lost={tail['lost']} reverted={tail['reverted']} "
            f"intact={tail['intact']}"
        )
        lines.append(
            f"  violations      : {len(report.violations)}"
        )
        for violation in report.violations[:20]:
            lines.append(f"    !! {violation}")
        if len(report.violations) > 20:
            lines.append(
                f"    ... and {len(report.violations) - 20} more"
            )
        lines.append("-" * 64)
    total_violations = sum(len(r.violations) for r in reports)
    total_points = sum(r.points_explored for r in reports)
    verdict = "PASS" if total_violations == 0 else "FAIL"
    lines.append(
        f"{verdict}: {total_points} crash points, "
        f"{total_violations} durability violations"
    )
    return "\n".join(lines)
