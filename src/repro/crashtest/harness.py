"""Run a workload once per crash point and verify every recovery.

The harness exploits the simulation's determinism: a workload replayed
from the same seed on a fresh stack reproduces the reference run's
timeline exactly (observability never moves the virtual clock), so an
:class:`~repro.sim.events.Interrupt` scheduled at a discovered virtual
time freezes the stack in precisely the state the reference run passed
through. Crashing there and recovering explores one point; the matrix
sweeps hundreds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.noblsm import NobLSM
from repro.core.noblsm_kv import NobLSMKV
from repro.crashtest.oracle import DurabilityOracle, LostTailStats, Violation
from repro.crashtest.points import (
    CrashPoint,
    SpanCollector,
    points_from_ops,
    points_from_spans,
    random_points,
    select_points,
)
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB
from repro.lsm.options import KIB, Options
from repro.lsm.repair import repair_db
from repro.obs.metrics import MetricRegistry
from repro.obs.trace import Tracer, chrome_trace_document
from repro.sim.clock import millis
from repro.sim.events import Interrupt

#: (op, key, value-or-None) — one workload step
WorkloadOp = Tuple[str, bytes, Optional[bytes]]

#: mode name -> (store class, sync-acked semantics)
MODES: Dict[str, Tuple[type, bool]] = {
    # the paper's store: one fsync per KV pair, async commits elsewhere
    "noblsm": (NobLSM, False),
    # key-value separation on top of noblsm: every workload value rides
    # the vLog, exercising commit-gated segment reclamation under crash
    "noblsm-kv": (NobLSMKV, False),
    # sync-everything baseline: WAL fsync on every write, so every acked
    # operation must survive any crash
    "sync": (DB, True),
}


@dataclass
class CrashMatrixConfig:
    """One mode's sweep configuration."""

    mode: str = "noblsm"
    points: int = 120
    seed: int = 0
    num_ops: int = 240
    num_keys: int = 64
    delete_fraction: float = 0.1
    #: fraction of the point budget drawn uniformly at random
    random_fraction: float = 0.2
    commit_interval_ns: int = millis(20)
    reclaim_interval_ns: int = millis(20)
    dbname: str = "db"
    #: background compaction threads (1 = the seed's serial scheduler);
    #: >1 exercises the parallel scheduler under crash injection
    background_threads: int = 1
    #: device submission channels (1 = single-queue SATA)
    num_channels: int = 1

    def validate(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; pick one of {sorted(MODES)}"
            )
        if self.points < 1:
            raise ValueError("need at least one crash point")
        if self.num_ops < 1 or self.num_keys < 1:
            raise ValueError("workload must have ops and keys")

    def build_options(self) -> Options:
        """Tiny capacities so a short workload exercises deep compactions."""
        options = Options(
            write_buffer_size=1 * KIB,
            max_file_size=1 * KIB,
            block_size=256,
            max_bytes_for_level_base=2 * KIB,
            l0_compaction_trigger=2,
        )
        options.reclaim_interval_ns = self.reclaim_interval_ns
        if self.background_threads != 1:
            options.background_threads = self.background_threads
        if MODES[self.mode][1]:
            options.sync.sync_wal = True
        if self.mode.endswith("-kv"):
            # the workload's 27-byte values all separate; tiny segments
            # and an eager GC ratio force relocation + retirement churn
            options.value_threshold = 16
            options.vlog_segment_bytes = 512
            options.vlog_gc_garbage_ratio = 0.3
        return options

    def build_stack(
        self, observe: bool = False, trace: bool = False
    ) -> StorageStack:
        obs = None
        if observe or trace:
            obs = MetricRegistry()
            if trace:
                Tracer(obs)
        return StorageStack(
            StackConfig(
                journal=JournalConfig(
                    commit_interval_ns=self.commit_interval_ns
                ),
                obs=obs,
                num_channels=(
                    self.num_channels if self.num_channels != 1 else None
                ),
            )
        )

    def build_store(self, stack: StorageStack):
        store_cls = MODES[self.mode][0]
        return store_cls(stack, self.dbname, options=self.build_options())


def build_workload(config: CrashMatrixConfig) -> List[WorkloadOp]:
    """Deterministic fillrandom with a sprinkle of deletes."""
    rng = random.Random(config.seed)
    ops: List[WorkloadOp] = []
    written: List[bytes] = []
    for _ in range(config.num_ops):
        if written and rng.random() < config.delete_fraction:
            ops.append(("delete", rng.choice(written), None))
            continue
        key = f"key{rng.randrange(config.num_keys):04d}".encode()
        value = f"v{rng.randrange(10**8):08d}".encode() * 3
        ops.append(("put", key, value))
        written.append(key)
    return ops


@dataclass
class PointResult:
    """Outcome of one injection."""

    point: CrashPoint
    crashed_at: int
    recovery: str  # "open" | "repair" | "failed"
    wal_tail_drops: int
    violations: List[Violation]
    lost_tail: LostTailStats
    recovered_records: int = 0
    #: Chrome trace-event snapshot around the crash (traced replays of
    #: violated points only) — lets a violation be debugged from its trace
    trace_events: Optional[List[Dict[str, object]]] = None


@dataclass
class CrashMatrixReport:
    """Aggregate of a whole mode sweep."""

    mode: str
    seed: int
    num_ops: int
    reference_end_ns: int = 0
    candidate_points: int = 0
    results: List[PointResult] = field(default_factory=list)

    @property
    def points_explored(self) -> int:
        return len(self.results)

    @property
    def violations(self) -> List[Violation]:
        return [v for r in self.results for v in r.violations]

    @property
    def recovery_modes(self) -> Dict[str, int]:
        counts = {"open": 0, "repair": 0, "failed": 0}
        for result in self.results:
            counts[result.recovery] += 1
        return counts

    @property
    def points_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            kind = result.point.kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    @property
    def wal_tail_drops(self) -> int:
        return sum(r.wal_tail_drops for r in self.results)

    @property
    def lost_tail_totals(self) -> Dict[str, int]:
        totals = {"volatile_keys": 0, "lost": 0, "reverted": 0, "intact": 0}
        for result in self.results:
            for name, value in result.lost_tail.snapshot().items():
                totals[name] += value
        return totals


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------


def _volatile_keys(db, keys) -> Set[bytes]:
    """Keys whose newest version lives only in memtables + unsynced WAL."""
    if db is None:
        return set()
    volatile: Set[bytes] = set()
    pending = db._pending_imm[0] if db._pending_imm is not None else None
    for key in keys:
        if db.mem.get(key) is not None:
            volatile.add(key)
        elif pending is not None and pending.get(key) is not None:
            volatile.add(key)
    return volatile


def _shadow_violations(db) -> List[Violation]:
    """Shadow retention: predecessors outlive uncommitted successors.

    Checked on the live (pre-crash) stack: while any dependency group is
    unresolved — some successor SSTable or its MANIFEST barrier is not
    yet committed — every predecessor in the group must still exist,
    because after a crash those predecessors may be the only complete
    copy of the data.
    """
    tracker = getattr(db, "tracker", None)
    if tracker is None:
        return []
    violations: List[Violation] = []
    for group in tracker.unresolved_groups():
        for ref in group.predecessors:
            if not db.fs.exists(ref.path):
                violations.append(
                    Violation(
                        "shadow-deleted-early",
                        ref.path.encode(),
                        f"predecessor {ref.number} missing while group "
                        f"{group.group_id} has uncommitted successors",
                    )
                )
    return violations


def _vlog_violations(db) -> List[Violation]:
    """Commit-gated segment retirement: no reclaim before the gate.

    Checked on the live (pre-crash) stack, mirroring the shadow check,
    in two layers. First, a segment whose retirement barrier has not
    fully committed must still exist on disk — after a crash it may
    hold the only durable copy of values whose relocating tables never
    committed. Second — independently of the store's own retirement
    bookkeeping, so a lying gate cannot hide from it — every table that
    recovery could still roll back to (a predecessor of an unresolved
    dependency group, or any non-shadow table in the current version)
    must have its vLog pointers backed by a segment that exists. A
    broken gate empties the pending-retirement list instantly, but it
    cannot stop the unresolved groups from naming the predecessor
    tables whose pointers the early reclaim just severed.
    """
    from repro.lsm.filenames import table_file_name, vlog_file_name
    from repro.lsm.format import TYPE_VALUE, CorruptionError
    from repro.lsm.sstable import Table
    from repro.lsm.vlog import POINTER_PREFIX, decode_pointer

    if db is None or getattr(db, "vlog", None) is None:
        return []
    violations: List[Violation] = []
    for segment, barrier in db.pending_segment_retirements:
        path = vlog_file_name(db.dbname, segment)
        if barrier and not db.fs.exists(path):
            violations.append(
                Violation(
                    "segment-reclaimed-early",
                    path.encode(),
                    f"vlog segment {segment} missing while its barrier "
                    f"{barrier} has uncommitted inodes",
                )
            )

    paths = set()
    tracker = getattr(db, "tracker", None)
    if tracker is not None:
        for group in tracker.unresolved_groups():
            for ref in group.predecessors:
                paths.add(ref.path)
    for files in db.versions.current.files:
        for meta in files:
            if not meta.shadow:
                paths.add(table_file_name(db.dbname, meta.number))
    fs = db.fs
    t = db.stack.now
    flagged = set()
    for path in sorted(paths):
        if not fs.exists(path):
            continue  # _shadow_violations owns missing-predecessor checks
        try:
            table, t = Table.open(fs, path, at=t)
            entries, t = table.all_entries(at=t)
        except CorruptionError:
            continue  # a mid-write table is not yet recovery-relevant
        for internal_key, value in entries:
            if internal_key[-8] != TYPE_VALUE or value[:1] != POINTER_PREFIX:
                continue
            segment, _, _ = decode_pointer(value)
            if (path, segment) in flagged:
                continue
            if not fs.exists(vlog_file_name(db.dbname, segment)):
                flagged.add((path, segment))
                violations.append(
                    Violation(
                        "segment-reclaimed-early",
                        path.encode(),
                        f"recovery-relevant table {path} points at vlog "
                        f"segment {segment} which is already unlinked",
                    )
                )
    return violations


def _recovered_vlog_violations(recovered, stack: StorageStack) -> List[Violation]:
    """Every pointer in the recovered version must resolve.

    The recovery validator should have rolled back any table whose
    pointers dangle; a pointer that still escapes into the recovered
    version means a value was durably lost while its key survived —
    exactly what commit-gated reclamation exists to prevent.
    """
    from repro.lsm.filenames import table_file_name, vlog_file_name
    from repro.lsm.format import TYPE_VALUE, CorruptionError
    from repro.lsm.sstable import Table
    from repro.lsm.vlog import POINTER_PREFIX, decode_pointer

    if getattr(recovered, "vlog", None) is None:
        return []
    violations: List[Violation] = []
    fs = stack.fs
    t = stack.now
    for files in recovered.versions.current.files:
        for meta in files:
            if meta.shadow:
                continue
            path = table_file_name(recovered.dbname, meta.number)
            try:
                table, t = Table.open(fs, path, at=t)
                entries, t = table.all_entries(at=t)
            except CorruptionError:
                continue  # the size validator already vouched; skip
            for internal_key, value in entries:
                if (
                    internal_key[-8] != TYPE_VALUE
                    or value[:1] != POINTER_PREFIX
                ):
                    continue
                segment, offset, length = decode_pointer(value)
                seg_path = vlog_file_name(recovered.dbname, segment)
                if (
                    not fs.exists(seg_path)
                    or offset + length > fs.stat_size(seg_path)
                ):
                    violations.append(
                        Violation(
                            "dangling-vlog-pointer",
                            internal_key[:-8],
                            f"table {meta.number} points at segment "
                            f"{segment} [{offset}, {offset + length}) "
                            f"which is missing or short after recovery",
                        )
                    )
    return violations


def _apply_ops(
    db,
    ops: List[WorkloadOp],
    stack: StorageStack,
    oracle: Optional[DurabilityOracle] = None,
    windows: Optional[List[Tuple[int, int]]] = None,
) -> None:
    """Apply ``ops`` to an already-open store.

    Raises :class:`Interrupt` wherever a scheduled crash point fires;
    the caller keeps its reference to ``db`` so crash-time state (the
    memtables' volatile keys) stays inspectable.
    """
    t = stack.now
    for op, key, value in ops:
        if oracle is not None:
            oracle.begin(op, key, value)
        submit = t
        if op == "put":
            t = db.put(key, value, at=t)
        else:
            t = db.delete(key, at=t)
        if oracle is not None:
            oracle.ack()
        if windows is not None:
            windows.append((submit, t))


def reference_run(
    config: CrashMatrixConfig, ops: List[WorkloadOp]
) -> Tuple[List[Tuple[str, int, int]], List[Tuple[int, int]], int]:
    """The observed, crash-free execution: spans, op windows, end time."""
    stack = config.build_stack(observe=True)
    collector = SpanCollector()
    stack.obs.add_span_listener(collector)
    windows: List[Tuple[int, int]] = []
    db = config.build_store(stack)
    _apply_ops(db, ops, stack, windows=windows)
    # run the tail out: trailing commits, reclamation, final writeback
    end = stack.events.run_until(stack.now + 3 * config.commit_interval_ns)
    db.close(stack.now)
    return collector.spans, windows, max(end, stack.now)


def discover_points(
    config: CrashMatrixConfig,
    spans: List[Tuple[str, int, int]],
    windows: List[Tuple[int, int]],
    end_ns: int,
) -> List[CrashPoint]:
    """Turn one reference run's observations into a bounded point set."""
    rng = random.Random(config.seed ^ 0xC4A54)
    candidates = points_from_spans(spans)
    candidates += points_from_ops(windows)
    candidates += random_points(
        end_ns, rng, max(int(config.points * config.random_fraction), 1)
    )
    candidates = [p for p in candidates if p.time_ns > 0]
    return select_points(candidates, config.points, rng)


def run_point(
    config: CrashMatrixConfig,
    ops: List[WorkloadOp],
    point: CrashPoint,
    trace: bool = False,
) -> PointResult:
    """Replay the workload, crash at ``point``, recover and verify.

    With ``trace=True`` the replay runs under a causal tracer (the
    virtual timeline is identical — observability never moves the
    clock) and the result carries a bounded Chrome trace-event snapshot
    of the window leading up to the crash.
    """
    stack = config.build_stack(observe=trace, trace=trace)
    interrupt = stack.events.schedule_interrupt(point.time_ns)
    oracle = DurabilityOracle(sync_acked=MODES[config.mode][1])
    db = None
    try:
        # the interrupt may fire inside the open path itself, in which
        # case no operation ever began and the volatile set is empty
        db = config.build_store(stack)
        _apply_ops(db, ops, stack, oracle=oracle)
        # the point may sit past the last ack, in the background tail
        stack.events.run_until(point.time_ns)
    except Interrupt:
        pass
    interrupt.cancel()

    violations = _shadow_violations(db)
    violations.extend(_vlog_violations(db))
    volatile = _volatile_keys(db, oracle.history)
    crashed_at = stack.now
    trace_events: Optional[List[Dict[str, object]]] = None
    if trace and stack.obs.tracer is not None:
        # snapshot before crash/recovery so the trace shows exactly what
        # led up to the injected failure, clipped to the last few commit
        # intervals and bounded in size
        window = 3 * config.commit_interval_ns
        doc = chrome_trace_document(
            stack.obs.tracer,
            meta={
                "mode": config.mode,
                "point_kind": point.kind,
                "point_time_ns": point.time_ns,
                "crashed_at": crashed_at,
            },
            clip=(max(crashed_at - window, 0), crashed_at),
            limit=500,
        )
        trace_events = doc["traceEvents"]
    stack.crash()

    recovery = "open"
    repair_tail_drops = 0
    recovered = None
    try:
        recovered = config.build_store(stack)
    except Exception:
        recovery = "repair"
        try:
            repair_result, _ = repair_db(
                stack.fs,
                config.dbname,
                config.build_options(),
                at=stack.now,
            )
            repair_tail_drops = repair_result.tail_drops
            recovered = config.build_store(stack)
        except Exception as error:  # recovery must never fail outright
            violations.append(
                Violation(
                    "recovery-failed",
                    b"",
                    f"open and repair both failed: {error!r}",
                )
            )
            recovery = "failed"

    lost_tail = LostTailStats()
    tail_drops = repair_tail_drops
    recovered_records = 0
    if recovered is not None:
        violations.extend(_recovered_vlog_violations(recovered, stack))
        tail_drops += recovered.stats.wal_tail_drops
        recovered_records = recovered.stats.recovered_records
        t = stack.now
        view: Dict[bytes, Optional[bytes]] = {}
        for key in sorted(oracle.history):
            value, t = recovered.get(key, at=t)
            view[key] = value
        scanned: List[Tuple[bytes, bytes]] = []
        iterator = recovered.iterate(t)
        while iterator.valid:
            scanned.append((iterator.key, iterator.value))
            iterator.next()
        oracle_violations, lost_tail = oracle.check(view, scanned, volatile)
        violations.extend(oracle_violations)

    return PointResult(
        point=point,
        crashed_at=crashed_at,
        recovery=recovery,
        wal_tail_drops=tail_drops,
        violations=violations,
        lost_tail=lost_tail,
        recovered_records=recovered_records,
        trace_events=trace_events,
    )


def run_crash_matrix(config: CrashMatrixConfig) -> CrashMatrixReport:
    """Discover points from a reference run, then explore every one."""
    config.validate()
    ops = build_workload(config)
    spans, windows, end_ns = reference_run(config, ops)
    points = discover_points(config, spans, windows, end_ns)
    report = CrashMatrixReport(
        mode=config.mode,
        seed=config.seed,
        num_ops=len(ops),
        reference_end_ns=end_ns,
        candidate_points=len(points),
    )
    for point in points:
        report.results.append(run_point(config, ops, point))
    # Replay the first few violated points under the tracer so their
    # payloads carry a debuggable trace snapshot. Determinism makes the
    # traced replay's timeline identical to the untraced exploration.
    traced = 0
    for result in report.results:
        if not result.violations or traced >= 5:
            continue
        replay = run_point(config, ops, result.point, trace=True)
        result.trace_events = replay.trace_events
        traced += 1
    return report
