"""Crash-point discovery: from an observed reference run to a point set.

A reference execution of the workload (no crash, observability enabled)
emits spans for every journal commit, writeback batch and compaction,
plus per-operation ack times from the workload runner. Each of those
becomes a family of candidate injection points:

- ``commit-begin`` / ``mid-commit`` / ``commit-boundary`` around every
  JBD2 commit span (the boundary is one nanosecond past the commit's
  completion — the first instant the transaction is durable);
- ``mid-writeback`` inside every flusher batch;
- ``minor-begin`` / ``mid-minor`` and ``major-begin`` / ``mid-major``
  inside every compaction span;
- ``mid-vlog-append`` inside every vLog value append and ``mid-vlog-gc``
  inside every GC relocation (noblsm-kv only);
- ``pre-vlog-reclaim`` / ``post-vlog-reclaim`` bracketing every
  commit-gated segment unlink — the instants just before the segment
  disappears and just after (the first moment recovery must cope with
  its absence);
- ``mid-wal-append`` between an operation's submission and its ack;
- ``random`` virtual times drawn uniformly over the run.

``select_points`` dedups by timestamp and picks a budget-bounded subset
round-robin across kinds, so rare families (a single major compaction)
are never crowded out by plentiful ones (thousands of WAL appends).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: span name -> crash-point kind prefix
SPAN_FAMILIES = {
    "journal.commit": "commit",
    "fs.writeback": "writeback",
    "db.compaction.minor": "minor",
    "db.compaction.major": "major",
    "db.vlog.append": "vlog-append",
    "db.vlog.gc": "vlog-gc",
    "db.vlog.reclaim": "vlog-reclaim",
}


@dataclass(frozen=True)
class CrashPoint:
    """One virtual time at which to pull the plug."""

    time_ns: int
    kind: str

    def __str__(self) -> str:
        return f"{self.kind}@{self.time_ns}ns"


class SpanCollector:
    """A span listener that keeps only (name, start, end) triples.

    Attach with ``registry.add_span_listener(collector)`` before the
    reference run; unlike ``registry.spans`` it is unbounded by
    ``max_spans`` and sees child spans too.
    """

    def __init__(self) -> None:
        self.spans: List[Tuple[str, int, int]] = []

    def __call__(self, span) -> None:
        if span.name in SPAN_FAMILIES:
            self.spans.append((span.name, span.start_ns, span.end_ns or 0))


def points_from_spans(
    spans: Iterable[Tuple[str, int, int]]
) -> List[CrashPoint]:
    """Candidate points around every collected span."""
    points: List[CrashPoint] = []
    for name, start, end in spans:
        family = SPAN_FAMILIES.get(name)
        if family is None:
            continue
        mid = (start + end) // 2
        if family == "commit":
            points.append(CrashPoint(start, "commit-begin"))
            points.append(CrashPoint(mid, "mid-commit"))
            points.append(CrashPoint(end + 1, "commit-boundary"))
        elif family == "writeback":
            points.append(CrashPoint(mid, "mid-writeback"))
        elif family in ("vlog-append", "vlog-gc"):
            points.append(CrashPoint(mid, f"mid-{family}"))
        elif family == "vlog-reclaim":
            # bracket the unlink: the last instant the segment exists
            # and the first instant recovery must live without it
            points.append(CrashPoint(start, "pre-vlog-reclaim"))
            points.append(CrashPoint(end + 1, "post-vlog-reclaim"))
        else:
            points.append(CrashPoint(start, f"{family}-begin"))
            points.append(CrashPoint(mid, f"mid-{family}"))
    return points


def points_from_ops(
    op_windows: Iterable[Tuple[int, int]]
) -> List[CrashPoint]:
    """``mid-wal-append`` points: midway through each operation's window.

    ``op_windows`` are (submit_ns, ack_ns) pairs from the reference run;
    an operation's window covers its WAL append, so a point inside it
    crashes the store mid-append.
    """
    points: List[CrashPoint] = []
    for submit, ack in op_windows:
        if ack > submit:
            points.append(CrashPoint((submit + ack) // 2, "mid-wal-append"))
    return points


def random_points(
    end_ns: int, rng: random.Random, count: int
) -> List[CrashPoint]:
    """Uniformly random virtual times in (0, end_ns]."""
    if end_ns <= 1 or count <= 0:
        return []
    return [
        CrashPoint(rng.randrange(1, end_ns + 1), "random")
        for _ in range(count)
    ]


def select_points(
    candidates: Sequence[CrashPoint], budget: int, rng: random.Random
) -> List[CrashPoint]:
    """A budget-bounded, timestamp-distinct, kind-balanced selection.

    Candidates are grouped by kind; selection takes one point per kind
    per round (shuffled within each kind) until the budget is exhausted
    or nothing remains. Two candidates with the same timestamp count as
    one point — the earliest-registered kind wins.
    """
    by_kind: Dict[str, List[CrashPoint]] = {}
    for point in candidates:
        by_kind.setdefault(point.kind, []).append(point)
    for pool in by_kind.values():
        rng.shuffle(pool)
    selected: List[CrashPoint] = []
    seen_times = set()
    kinds = sorted(by_kind)
    while len(selected) < budget and any(by_kind[k] for k in kinds):
        for kind in kinds:
            pool = by_kind[kind]
            while pool:
                point = pool.pop()
                if point.time_ns not in seen_times:
                    seen_times.add(point.time_ns)
                    selected.append(point)
                    break
            if len(selected) >= budget:
                break
    selected.sort(key=lambda p: p.time_ns)
    return selected
